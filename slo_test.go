// Overload-control tests: route SLO declarations, priority-ordered
// admission, middleware deadline enforcement, scheduler-level expiry,
// the client retry policy, and the cluster tier's budget plumbing
// (front-tier admission, proxy budget decrement).
package zygos

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/proto"
)

// recordingWriter is a ResponseWriter for driving middleware directly:
// it records the completion and doubles as its own Completion, so
// detach-by-policy paths complete through the same record.
type recordingWriter struct {
	done     chan struct{}
	payload  []byte
	code     uint8
	errored  bool
	detached bool
}

func newRecordingWriter() *recordingWriter {
	return &recordingWriter{done: make(chan struct{})}
}

func (w *recordingWriter) Reply(p []byte) error {
	w.payload = append([]byte(nil), p...)
	close(w.done)
	return nil
}

func (w *recordingWriter) Error(code uint8, msg string) error {
	w.code, w.errored = code, true
	close(w.done)
	return nil
}

func (w *recordingWriter) Detach() Completion {
	w.detached = true
	return w
}

func TestRouteSLOHints(t *testing.T) {
	echo := func(w ResponseWriter, req *Request) { w.Reply(req.Payload) }
	mux := NewMux()
	mux.HandleFunc(1, echo)
	mux.HandleFunc(2, echo)
	mux.HandleFunc(3, echo)
	mux.Route(1).SLO(200*time.Microsecond, 2*time.Microsecond)
	mux.Route(2).SLO(time.Millisecond, 10*time.Microsecond).ShedPriority(-3)

	h := mux.SLOHints()
	if got := h[1]; got != (RouteSLO{Budget: 200 * time.Microsecond, Cost: 2 * time.Microsecond}) {
		t.Fatalf("route 1 hints %+v", got)
	}
	// Negative priorities clamp to 0 — "shed last", never "shed before
	// the limit".
	if got := h[2].ShedPriority; got != 0 {
		t.Fatalf("route 2 priority %d, want 0 (clamped)", got)
	}
	if _, ok := h[3]; ok {
		t.Fatal("route 3 declared no SLO but has hints")
	}

	// The hint table is a copy-on-write snapshot: declaring while a
	// reader holds the old map must not mutate it.
	old := mux.SLOHints()
	mux.Route(1).ShedPriority(2)
	if old[1].ShedPriority != 0 {
		t.Fatal("SLO declaration mutated a published snapshot")
	}
	if mux.SLOHints()[1].ShedPriority != 2 {
		t.Fatal("new snapshot missing the declaration")
	}
}

// Route-aware admission sheds by declared priority: with the backlog
// between a sacrificial route's threshold and the full limit, the
// sacrificial route is refused (with a drain-time retry-after hint)
// while the protected route keeps serving.
func TestRouteAwareAdmissionShedsByPriority(t *testing.T) {
	const (
		protected   uint16 = 1
		sacrificial uint16 = 2
		blocker     uint16 = 3
	)
	release := make(chan struct{})
	mux := NewMux()
	echo := func(w ResponseWriter, req *Request) { w.Reply(req.Payload) }
	mux.HandleFunc(protected, echo)
	mux.HandleFunc(sacrificial, echo)
	mux.HandleFunc(blocker, func(w ResponseWriter, req *Request) {
		co := w.Detach()
		go func() {
			<-release
			co.Reply([]byte("unblocked"))
		}()
	})
	mux.Route(sacrificial).SLO(time.Millisecond, 100*time.Microsecond).ShedPriority(2)

	s := newEchoServer(t, Config{Cores: 1, Handler: mux.Handler()})
	s.Use(s.RouteAwareAdmission(mux, 8))

	// Park four detached blockers: backlog 4, under the full limit of 8
	// but over the sacrificial route's threshold of 8>>2 = 2. They get
	// their own connection — per-connection reply ordering would
	// otherwise sequence the probes' replies behind the parked ones.
	bc := s.NewClient()
	defer bc.Close()
	blocked := make(chan error, 4)
	for i := 0; i < 4; i++ {
		if err := bc.SendMethodAsync(blocker, nil, func(_ []byte, err error) { blocked <- err }); err != nil {
			t.Fatal(err)
		}
	}
	c := s.NewClient()
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Detached < 4 {
		if time.Now().After(deadline) {
			t.Fatal("blockers never detached")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The sacrificial route sheds; ErrShed matches and the hint is the
	// deterministic drain estimate: excess 3 × declared cost 100µs over
	// 1 core.
	_, err := c.CallMethod(sacrificial, []byte("x"))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("sacrificial route: got %v, want ErrShed", err)
	}
	if d, ok := RetryAfter(err); !ok || d != 300*time.Microsecond {
		t.Fatalf("RetryAfter = %v, %v; want 300µs, true", d, ok)
	}
	// The protected route is untouched by the same backlog.
	if resp, err := c.CallMethod(protected, []byte("vip")); err != nil || string(resp) != "vip" {
		t.Fatalf("protected route: %q %v", resp, err)
	}

	st := s.Stats()
	if st.Shed != 1 || st.Routes[sacrificial].Shed != 1 || st.Routes[protected].Shed != 0 {
		t.Fatalf("shed counters: total=%d sacrificial=%d protected=%d",
			st.Shed, st.Routes[sacrificial].Shed, st.Routes[protected].Shed)
	}

	close(release)
	for i := 0; i < 4; i++ {
		if err := <-blocked; err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
	}
	// Backlog drained: the sacrificial route admits again.
	if resp, err := c.CallMethod(sacrificial, []byte("ok")); err != nil || string(resp) != "ok" {
		t.Fatalf("post-drain: %q %v", resp, err)
	}
}

// SLOEnforcement's two jobs, driven directly: an expired request is
// refused without invoking the handler, and a route whose declared cost
// exceeds its budget is detached by policy so the worker moves on.
func TestSLOEnforcementExpiryAndPreDetach(t *testing.T) {
	s := newEchoServer(t, Config{Cores: 1})
	mux := NewMux()
	var ran atomic.Bool
	mux.HandleFunc(4, func(w ResponseWriter, req *Request) {
		ran.Store(true)
		w.Reply([]byte("slow-scan"))
	})
	mw := s.SLOEnforcement(mux)
	h := mw(mux.Handler())

	// Budget already gone: StatusDeadlineExceeded, handler never runs,
	// route expiry counter attributes the loss.
	w := newRecordingWriter()
	h(w, &Request{Method: 4, deadline: time.Now().Add(-time.Microsecond)})
	<-w.done
	if !w.errored || w.code != StatusDeadlineExceeded {
		t.Fatalf("expired request completed %+v, want StatusDeadlineExceeded", w)
	}
	if ran.Load() {
		t.Fatal("expired request still ran the handler")
	}
	if got := s.Stats().Routes[4].Expired; got != 1 {
		t.Fatalf("route expired counter %d, want 1", got)
	}

	// Declared Cost ≥ Budget: the handler is pre-detached — it runs, but
	// through a detached completion.
	mux.Route(4).SLO(100*time.Microsecond, time.Millisecond)
	w = newRecordingWriter()
	h(w, &Request{Method: 4})
	<-w.done
	if !w.detached {
		t.Fatal("slow route was not detached by policy")
	}
	if string(w.payload) != "slow-scan" {
		t.Fatalf("detached reply %q", w.payload)
	}
}

// The same pre-detach end to end: a route declared slower than its
// budget completes normally for the client while Stats().Detached shows
// the worker was released.
func TestSLOEnforcementPreDetachEndToEnd(t *testing.T) {
	mux := NewMux()
	mux.HandleFunc(5, func(w ResponseWriter, req *Request) { w.Reply([]byte("scan")) })
	mux.Route(5).SLO(100*time.Microsecond, 2*time.Millisecond)
	s := newEchoServer(t, Config{Cores: 1, Handler: mux.Handler()})
	s.Use(s.SLOEnforcement(mux))

	c := s.NewClient()
	defer c.Close()
	if resp, err := c.CallMethod(5, nil); err != nil || string(resp) != "scan" {
		t.Fatalf("pre-detached call: %q %v", resp, err)
	}
	if !s.Flush(5 * time.Second) {
		t.Fatal("flush timed out")
	}
	if got := s.Stats().Detached; got < 1 {
		t.Fatalf("Detached = %d, want ≥ 1", got)
	}
}

// A budgeted request that expires while queued behind a busy worker is
// answered StatusDeadlineExceeded by the scheduler without running the
// handler — work shed for free instead of executed for nobody.
//
// A budget counts from parse (the server cannot trust client clocks),
// so the probe must be *parsed* before the worker blocks, then wait in
// the ready queue past its budget. Two pipelined gated requests arrange
// that: the first pins the sole worker while the second gated frame and
// the probe land in the ingress ring; releasing the gate lets one
// kernel step parse both — stamping both deadlines — and EDF runs the
// shorter-budget gated request first, pinning the worker again while
// the probe's budget drains in the ready queue.
func TestDeadlineExpiresInQueue(t *testing.T) {
	const (
		gated    uint16 = 8
		budgeted uint16 = 7
	)
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	var ran atomic.Bool
	mux := NewMux()
	mux.HandleFunc(gated, func(w ResponseWriter, req *Request) {
		started <- struct{}{}
		<-gate // hold the only worker synchronously
		w.Reply(nil)
	})
	mux.HandleFunc(budgeted, func(w ResponseWriter, req *Request) {
		ran.Store(true)
		w.Reply(req.Payload)
	})
	// One core and no kernel proxying: with the worker pinned in the
	// gated handler, nothing else may execute the budgeted request — it
	// must sit in the queue until its budget is gone.
	s := newEchoServer(t, Config{Cores: 1, NoInterrupts: true, Handler: mux.Handler()})

	gateDone := make(chan error, 2)
	a := s.NewClient()
	defer a.Close()
	if err := a.SendMethodAsync(gated, nil, func(_ []byte, err error) { gateDone <- err }); err != nil {
		t.Fatal(err)
	}
	<-started

	// Worker pinned: queue the second gated request (5ms budget — the
	// earlier EDF deadline) and the probe (20ms). Both frames sit
	// unparsed until the gate opens.
	if err := a.SendMethodBudgetAsync(gated, nil, 5*time.Millisecond, func(_ []byte, err error) {
		gateDone <- err
	}); err != nil {
		t.Fatal(err)
	}
	b := s.NewClient()
	defer b.Close()
	expired := make(chan error, 1)
	if err := b.SendMethodBudgetAsync(budgeted, nil, 20*time.Millisecond, func(_ []byte, err error) {
		expired <- err
	}); err != nil {
		t.Fatal(err)
	}

	// Release gate #1: the worker parses both queued frames, stamping
	// their deadlines, and activates the gated conn first. Hold it past
	// the probe's budget, then release.
	gate <- struct{}{}
	<-started
	time.Sleep(50 * time.Millisecond)
	gate <- struct{}{}

	for i := 0; i < 2; i++ {
		if err := <-gateDone; err != nil {
			t.Fatalf("gated request: %v", err)
		}
	}
	err := <-expired
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if ran.Load() {
		t.Fatal("expired request still ran the handler")
	}
	st := s.Stats()
	if st.Expired != 1 || st.Routes[budgeted].Expired != 1 {
		t.Fatalf("expired counters: total=%d route=%d, want 1/1", st.Expired, st.Routes[budgeted].Expired)
	}
	// The connection survives the shed.
	if resp, err := b.CallMethod(budgeted, []byte("alive")); err != nil || string(resp) != "alive" {
		t.Fatalf("follow-up: %q %v", resp, err)
	}
}

func TestRetryPolicyHonorsRetryAfter(t *testing.T) {
	shed := &StatusError{Code: StatusShed, Msg: proto.FormatRetryAfter(2*time.Millisecond, "busy")}
	calls := 0
	rp := &RetryPolicy{MaxAttempts: 3, Rand: rand.New(rand.NewSource(1))}
	start := time.Now()
	resp, err := rp.Do(func() ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, shed
		}
		return []byte("ok"), nil
	})
	if err != nil || string(resp) != "ok" {
		t.Fatalf("Do: %q %v", resp, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Two hinted sleeps, each jittered over [hint/2, hint): at least
	// 2 × 1ms must have elapsed.
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("elapsed %v, want ≥ 2ms of hinted backoff", elapsed)
	}
}

func TestRetryPolicyStopsOnNonShed(t *testing.T) {
	// Non-shed errors — including deadline expiry — return immediately:
	// retrying work the server judged undeliverable feeds the overload.
	calls := 0
	rp := &RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Microsecond}
	_, err := rp.Do(func() ([]byte, error) {
		calls++
		return nil, &StatusError{Code: StatusDeadlineExceeded, Msg: "late"}
	})
	if calls != 1 {
		t.Fatalf("non-shed error retried: %d calls", calls)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v", err)
	}

	// Exhausted attempts surface the original shed error, still
	// ErrShed-matchable.
	calls = 0
	rp = &RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 50 * time.Microsecond}
	_, err = rp.Do(func() ([]byte, error) {
		calls++
		return nil, &StatusError{Code: StatusShed, Msg: "no room"}
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("exhausted retry lost the shed error: %v", err)
	}
}

// The cluster's front-tier admission gate refuses a request before any
// backend sees a byte of it once the fleet-wide load estimate exceeds
// MaxClusterDepth.
func TestClusterFrontTierAdmission(t *testing.T) {
	release := make(chan struct{})
	backend := newEchoServer(t, Config{Cores: 1, Handler: func(w ResponseWriter, req *Request) {
		co := w.Detach()
		go func() {
			<-release
			co.Reply([]byte("done"))
		}()
	}})
	cl := NewCluster(ClusterConfig{MaxClusterDepth: 1})
	defer cl.Close()
	cl.Add("b", backend.NewClient())

	// Two in-flight calls pass the gate (depth 0 then 1 ≤ limit); the
	// third sees depth 2 > 1 and is refused synchronously.
	settled := make(chan error, 2)
	for i := 0; i < 2; i++ {
		if err := cl.SendMethodAsync(0, nil, func(_ []byte, err error) { settled <- err }); err != nil {
			t.Fatalf("call %d refused: %v", i, err)
		}
	}
	_, err := cl.CallMethod(0, nil)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed from front-tier admission", err)
	}
	if d, ok := RetryAfter(err); !ok || d < 50*time.Microsecond || d > 10*time.Millisecond {
		t.Fatalf("RetryAfter = %v, %v; want clamped hint", d, ok)
	}
	if got := cl.Stats().Shed; got != 1 {
		t.Fatalf("cluster Shed = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-settled; err != nil {
			t.Fatalf("admitted call %d: %v", i, err)
		}
	}
	// Load drained: admitted again.
	if resp, err := cl.CallMethod(0, nil); err != nil || string(resp) != "done" {
		t.Fatalf("post-drain: %q %v", resp, err)
	}
}

// The proxy forwards the budget *remaining* at the hop — decremented,
// never re-granted — and refuses an already-expired request without
// touching a backend.
func TestProxyBudgetDecrement(t *testing.T) {
	const m uint16 = 9
	seen := make(chan time.Duration, 1)
	mux := NewMux()
	mux.HandleFunc(m, func(w ResponseWriter, req *Request) {
		rem, ok := req.RemainingBudget()
		if !ok {
			rem = -1
		}
		seen <- rem
		w.Reply([]byte("ok"))
	})
	backend := newEchoServer(t, Config{Cores: 1, Handler: mux.Handler()})
	cl := NewCluster(ClusterConfig{})
	defer cl.Close()
	cl.Add("b", backend.NewClient())
	front, err := NewServer(Config{Cores: 1, Handler: ProxyHandler(cl)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)

	c := front.NewClient()
	defer c.Close()
	const budget = 100 * time.Millisecond
	if _, err := c.CallMethodTimeout(m, nil, budget); err != nil {
		t.Fatal(err)
	}
	rem := <-seen
	if rem <= 0 || rem >= budget {
		t.Fatalf("backend saw remaining budget %v, want decremented within (0, %v)", rem, budget)
	}

	// Expired before forwarding: StatusDeadlineExceeded straight from
	// the proxy, no backend dispatch.
	w := newRecordingWriter()
	ProxyHandler(cl)(w, &Request{Method: m, deadline: time.Now().Add(-time.Millisecond)})
	<-w.done
	if !w.errored || w.code != StatusDeadlineExceeded {
		t.Fatalf("expired proxy request completed %+v, want StatusDeadlineExceeded", w)
	}
	select {
	case rem := <-seen:
		t.Fatalf("expired request reached the backend (remaining %v)", rem)
	default:
	}
}
