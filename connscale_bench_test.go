//go:build unix

// Connection-scale benchmarks: hot-path latency with a wall of idle
// connections resident, plus the per-connection memory and goroutine
// cost of that wall. BenchmarkConnScale1k and BenchmarkConnScale100k
// feed BENCH_conn.json (make bench-conn); the gate tracks ns/op, the
// extra metrics record bytes-resident and goroutines per idle conn.
package zygos

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"
)

func BenchmarkConnScale1k(b *testing.B)   { benchmarkConnScale(b, 1_000) }
func BenchmarkConnScale100k(b *testing.B) { benchmarkConnScale(b, 100_000) }

func benchmarkConnScale(b *testing.B, want int) {
	if testing.Short() && want > 1_000 {
		b.Skipf("skipping %d-connection wall in -short mode", want)
	}
	conns := scaleToFDLimit(b, want)

	srv, err := NewServer(Config{Cores: 2, Handler: func(w ResponseWriter, req *Request) {
		w.Reply(req.Payload)
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	// Several listeners, each on its own auto-assigned port: a client
	// has ~28k usable ephemeral ports per destination (ip, port) pair,
	// so 100k loopback connections need multiple destination ports.
	naddr := conns/20_000 + 1
	listeners := make([]net.Listener, naddr)
	addrs := make([]string, naddr)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		listeners[i] = l
		addrs[i] = l.Addr().String()
		go srv.Serve(l)
	}

	// Warm: one full round trip so pollers, sweeper, and pools exist
	// before the memory baseline is read.
	warm, err := DialClient(addrs[0], 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Call([]byte("warm")); err != nil {
		b.Fatal(err)
	}
	warm.Close()
	for srv.Stats().Net.Open != 0 {
		time.Sleep(time.Millisecond)
	}

	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	g0 := runtime.NumGoroutine()

	// The idle wall: raw net.Conns so the client side contributes no
	// goroutines and almost no memory — the delta measures the server.
	raw := make([]net.Conn, 0, conns)
	defer func() {
		srv.Close() // server first: teardown drains instead of racing 100k client FINs
		for _, nc := range raw {
			nc.Close()
		}
	}()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var dialErr error
	sem := make(chan struct{}, 64)
	for i := 0; i < conns; i++ {
		addr := addrs[i%naddr]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			nc, err := net.DialTimeout("tcp", addr, 30*time.Second)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if dialErr == nil {
					dialErr = fmt.Errorf("dial %s: %w", addr, err)
				}
				return
			}
			raw = append(raw, nc)
		}()
	}
	wg.Wait()
	if dialErr != nil {
		b.Fatal(dialErr)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for srv.Stats().Net.Open != conns {
		if time.Now().After(deadline) {
			b.Fatalf("server registered %d/%d connections", srv.Stats().Net.Open, conns)
		}
		time.Sleep(10 * time.Millisecond)
	}

	runtime.GC()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	bytesPerConn := float64(int64(ms1.HeapAlloc)-int64(ms0.HeapAlloc)) / float64(conns)
	if bytesPerConn < 0 {
		bytesPerConn = 0
	}
	goroutines := float64(runtime.NumGoroutine() - g0)

	// Hot path through the same pollers with the wall resident.
	c, err := DialClient(addrs[0], 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("0123456789abcdef")
	buf := make([]byte, 0, 64)
	// Settle before timing: the dial storm leaves garbage and scheduler
	// churn whose decay otherwise bleeds into the first timed iterations
	// and reads as a phantom per-connection latency cost.
	for i := 0; i < 256; i++ {
		if _, err := c.CallInto(payload, buf); err != nil {
			b.Fatal(err)
		}
	}
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CallInto(payload, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Reported after the timed loop: ResetTimer discards any metrics
	// recorded before it.
	b.ReportMetric(bytesPerConn, "bytes/conn")
	b.ReportMetric(goroutines, "goroutines")
}

// scaleToFDLimit raises RLIMIT_NOFILE toward what `want` loopback
// connections need (2 fds each plus slack) and returns the connection
// count the final limit supports. Capping is reported, never silent.
func scaleToFDLimit(b *testing.B, want int) int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		b.Logf("Getrlimit failed (%v); keeping %d connections", err, want)
		return want
	}
	need := uint64(2*want + 512)
	if rl.Cur < need {
		raise := rl
		raise.Cur = need
		if raise.Max < need {
			raise.Max = need // needs CAP_SYS_RESOURCE; harmless to try
		}
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raise); err != nil {
			// Retry within the existing hard limit.
			raise.Max = rl.Max
			if raise.Cur > raise.Max {
				raise.Cur = raise.Max
			}
			if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raise); err == nil {
				rl = raise
			}
		} else {
			rl = raise
		}
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	max := int((rl.Cur - 512) / 2)
	if max < 1 {
		b.Skipf("fd limit %d too low for any connections", rl.Cur)
	}
	if want > max {
		b.Logf("fd limit %d caps the idle wall at %d connections (wanted %d)", rl.Cur, max, want)
		return max
	}
	return want
}
