package zygos

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// Mux routes requests to handlers by the wire method ID carried in v3
// frames, in the style of http.ServeMux. Register one handler per
// operation instead of dispatching on an opcode byte inside the payload:
//
//	mux := zygos.NewMux()
//	mux.HandleFunc(MethodGet, handleGet)
//	mux.HandleFunc(MethodSet, handleSet)
//	mux.Route(MethodSet).Use(authMiddleware)
//	srv, _ := zygos.NewServer(zygos.Config{Handler: mux.Handler()})
//
// Requests arriving in v1/v2 frames carry no method and route to method
// 0 — register the legacy handler there and old clients keep working
// unchanged. A request naming a method with no handler is answered by
// the NotFound handler, which by default replies StatusNoMethod (a
// typed *StatusError on the client).
//
// Per-route middleware installed with Route(m).Use composes inside the
// server-wide Use chain: server middleware sees every request first,
// route middleware only its own method's. Registration is safe while
// the server is running; dispatch is a single lock-free map lookup on a
// copy-on-write snapshot, so routing adds no locks or allocations to
// the hot path.
type Mux struct {
	mu       sync.Mutex
	routes   map[uint16]*Route
	table    atomic.Value // map[uint16]Handler: composed per-route chains
	notFound atomic.Value // Handler
}

// Route is one method's registration: its handler and the middleware
// chain wrapped around it. Obtain one from Mux.Handle or Mux.Route.
type Route struct {
	mux    *Mux
	method uint16
	h      Handler
	mws    []Middleware
}

// NewMux returns an empty Mux whose NotFound handler replies
// StatusNoMethod.
func NewMux() *Mux {
	m := &Mux{routes: make(map[uint16]*Route)}
	m.notFound.Store(Handler(func(w ResponseWriter, req *Request) {
		w.Error(StatusNoMethod, "zygos: no handler for method "+strconv.Itoa(int(req.Method)))
	}))
	m.table.Store(map[uint16]Handler{})
	return m
}

// Handle registers h as the handler for method, replacing any previous
// registration, and returns the route for chaining (`.Use(...)`).
// Method 0 is the legacy route: v1/v2 frames, which carry no method
// field, dispatch there.
func (m *Mux) Handle(method uint16, h Handler) *Route {
	if method == MethodHealth {
		panic("zygos: method 0xFFFF is reserved for depth health frames")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.routeLocked(method)
	r.h = h
	m.recomposeLocked()
	return r
}

// HandleFunc is Handle for a bare function, mirroring http.HandleFunc.
func (m *Mux) HandleFunc(method uint16, h func(w ResponseWriter, req *Request)) *Route {
	return m.Handle(method, h)
}

// Route returns the registration for method, creating an empty one if
// needed, so middleware may be installed before (or after) Handle:
//
//	mux.Route(MethodSet).Use(quota)
func (m *Mux) Route(method uint16) *Route {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routeLocked(method)
}

// NotFound installs the fallback handler invoked for methods with no
// registration. The default replies StatusNoMethod.
func (m *Mux) NotFound(h Handler) {
	m.notFound.Store(h)
}

// Methods returns the registered method IDs (those with a handler), in
// unspecified order.
func (m *Mux) Methods() []uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint16, 0, len(m.routes))
	for method, r := range m.routes {
		if r.h != nil {
			out = append(out, method)
		}
	}
	return out
}

// Handler returns the Mux's dispatch function, suitable for
// Config.Handler or for mounting a Mux under a route of another Mux.
func (m *Mux) Handler() Handler { return m.ServeRPC }

// ServeRPC dispatches one request to its method's handler chain; it is
// the Handler a Mux-configured server runs.
func (m *Mux) ServeRPC(w ResponseWriter, req *Request) {
	if h, ok := m.table.Load().(map[uint16]Handler)[req.Method]; ok {
		h(w, req)
		return
	}
	m.notFound.Load().(Handler)(w, req)
}

// routeLocked returns method's route, creating it if absent. Caller
// holds m.mu.
func (m *Mux) routeLocked(method uint16) *Route {
	r, ok := m.routes[method]
	if !ok {
		r = &Route{mux: m, method: method}
		m.routes[method] = r
	}
	return r
}

// recomposeLocked rebuilds the dispatch snapshot: each registered
// handler wrapped in its route middleware, innermost-last exactly like
// Server.Use. Caller holds m.mu.
func (m *Mux) recomposeLocked() {
	table := make(map[uint16]Handler, len(m.routes))
	for method, r := range m.routes {
		if r.h == nil {
			continue
		}
		h := r.h
		for i := len(r.mws) - 1; i >= 0; i-- {
			h = r.mws[i](h)
		}
		table[method] = h
	}
	m.table.Store(table)
}

// Use appends middleware to the route's chain (first installed is
// outermost, as with Server.Use) and returns the route for chaining.
// Route middleware runs inside any server-wide chain and only for this
// method. Installing middleware while requests are in flight is safe;
// each request binds the chain current at its delivery.
func (r *Route) Use(mws ...Middleware) *Route {
	m := r.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	r.mws = append(r.mws, mws...)
	m.recomposeLocked()
	return r
}

// Method returns the wire method ID this route serves.
func (r *Route) Method() uint16 { return r.method }
