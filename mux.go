package zygos

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Mux routes requests to handlers by the wire method ID carried in v3
// frames, in the style of http.ServeMux. Register one handler per
// operation instead of dispatching on an opcode byte inside the payload:
//
//	mux := zygos.NewMux()
//	mux.HandleFunc(MethodGet, handleGet)
//	mux.HandleFunc(MethodSet, handleSet)
//	mux.Route(MethodSet).Use(authMiddleware)
//	srv, _ := zygos.NewServer(zygos.Config{Handler: mux.Handler()})
//
// Requests arriving in v1/v2 frames carry no method and route to method
// 0 — register the legacy handler there and old clients keep working
// unchanged. A request naming a method with no handler is answered by
// the NotFound handler, which by default replies StatusNoMethod (a
// typed *StatusError on the client).
//
// Per-route middleware installed with Route(m).Use composes inside the
// server-wide Use chain: server middleware sees every request first,
// route middleware only its own method's. Registration is safe while
// the server is running; dispatch is a single lock-free map lookup on a
// copy-on-write snapshot, so routing adds no locks or allocations to
// the hot path.
type Mux struct {
	mu       sync.Mutex
	routes   map[uint16]*Route
	table    atomic.Value // map[uint16]Handler: composed per-route chains
	slo      atomic.Value // map[uint16]RouteSLO: declared SLO hints
	notFound atomic.Value // Handler
}

// Route is one method's registration: its handler and the middleware
// chain wrapped around it. Obtain one from Mux.Handle or Mux.Route.
type Route struct {
	mux    *Mux
	method uint16
	h      Handler
	mws    []Middleware
	slo    RouteSLO
}

// RouteSLO is a route's declared service-level objective: the latency
// budget its callers expect, the handler's expected service time, and
// how eagerly the route may be sacrificed under overload. Declared with
// Route.SLO and Route.ShedPriority; consumed by the server's
// SLO-aware middleware (RouteAwareAdmission, SLOEnforcement).
type RouteSLO struct {
	// Budget is the end-to-end latency objective. Zero means the route
	// declared none.
	Budget time.Duration
	// Cost is the expected handler service time — the scheduler hint
	// that lets SLOEnforcement detach handlers too slow for the budget
	// before they pin a worker.
	Cost time.Duration
	// ShedPriority ranks the route for overload shedding: priority p
	// halves the route's admission threshold p times, so
	// cheap-to-sacrifice routes (a TPC-C StockLevel scan) drain queue
	// room for the routes the SLO is really about (NewOrder). Zero —
	// the default — sheds last, at the full depth limit.
	ShedPriority int
}

// NewMux returns an empty Mux whose NotFound handler replies
// StatusNoMethod.
func NewMux() *Mux {
	m := &Mux{routes: make(map[uint16]*Route)}
	m.notFound.Store(Handler(func(w ResponseWriter, req *Request) {
		w.Error(StatusNoMethod, "zygos: no handler for method "+strconv.Itoa(int(req.Method)))
	}))
	m.table.Store(map[uint16]Handler{})
	m.slo.Store(map[uint16]RouteSLO{})
	return m
}

// Handle registers h as the handler for method, replacing any previous
// registration, and returns the route for chaining (`.Use(...)`).
// Method 0 is the legacy route: v1/v2 frames, which carry no method
// field, dispatch there.
func (m *Mux) Handle(method uint16, h Handler) *Route {
	if method == MethodHealth {
		panic("zygos: method 0xFFFF is reserved for depth health frames")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.routeLocked(method)
	r.h = h
	m.recomposeLocked()
	return r
}

// HandleFunc is Handle for a bare function, mirroring http.HandleFunc.
func (m *Mux) HandleFunc(method uint16, h func(w ResponseWriter, req *Request)) *Route {
	return m.Handle(method, h)
}

// Route returns the registration for method, creating an empty one if
// needed, so middleware may be installed before (or after) Handle:
//
//	mux.Route(MethodSet).Use(quota)
func (m *Mux) Route(method uint16) *Route {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routeLocked(method)
}

// NotFound installs the fallback handler invoked for methods with no
// registration. The default replies StatusNoMethod.
func (m *Mux) NotFound(h Handler) {
	m.notFound.Store(h)
}

// Methods returns the registered method IDs (those with a handler), in
// unspecified order.
func (m *Mux) Methods() []uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint16, 0, len(m.routes))
	for method, r := range m.routes {
		if r.h != nil {
			out = append(out, method)
		}
	}
	return out
}

// Handler returns the Mux's dispatch function, suitable for
// Config.Handler or for mounting a Mux under a route of another Mux.
func (m *Mux) Handler() Handler { return m.ServeRPC }

// SLOHints returns the current copy-on-write snapshot of declared
// per-route SLOs. The returned map must not be mutated. Lock-free;
// cheap enough for per-request middleware.
func (m *Mux) SLOHints() map[uint16]RouteSLO {
	return m.slo.Load().(map[uint16]RouteSLO)
}

// ServeRPC dispatches one request to its method's handler chain; it is
// the Handler a Mux-configured server runs.
func (m *Mux) ServeRPC(w ResponseWriter, req *Request) {
	if h, ok := m.table.Load().(map[uint16]Handler)[req.Method]; ok {
		h(w, req)
		return
	}
	m.notFound.Load().(Handler)(w, req)
}

// routeLocked returns method's route, creating it if absent. Caller
// holds m.mu.
func (m *Mux) routeLocked(method uint16) *Route {
	r, ok := m.routes[method]
	if !ok {
		r = &Route{mux: m, method: method}
		m.routes[method] = r
	}
	return r
}

// recomposeLocked rebuilds the dispatch and SLO snapshots: each
// registered handler wrapped in its route middleware, innermost-last
// exactly like Server.Use. Caller holds m.mu.
func (m *Mux) recomposeLocked() {
	table := make(map[uint16]Handler, len(m.routes))
	slo := make(map[uint16]RouteSLO, len(m.routes))
	for method, r := range m.routes {
		if r.slo != (RouteSLO{}) {
			slo[method] = r.slo
		}
		if r.h == nil {
			continue
		}
		h := r.h
		for i := len(r.mws) - 1; i >= 0; i-- {
			h = r.mws[i](h)
		}
		table[method] = h
	}
	m.table.Store(table)
	m.slo.Store(slo)
}

// Use appends middleware to the route's chain (first installed is
// outermost, as with Server.Use) and returns the route for chaining.
// Route middleware runs inside any server-wide chain and only for this
// method. Installing middleware while requests are in flight is safe;
// each request binds the chain current at its delivery.
func (r *Route) Use(mws ...Middleware) *Route {
	m := r.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	r.mws = append(r.mws, mws...)
	m.recomposeLocked()
	return r
}

// SLO declares the route's latency budget and expected handler cost
// and returns the route for chaining:
//
//	mux.HandleFunc(MethodGet, handleGet).SLO(100*time.Microsecond, 2*time.Microsecond)
//	mux.HandleFunc(MethodScan, handleScan).SLO(10*time.Millisecond, 3*time.Millisecond)
//
// The hints feed the SLO-aware middleware: RouteAwareAdmission sheds
// against them, SLOEnforcement detaches handlers whose declared cost
// exceeds the budget, and clients that stamp no explicit wire budget
// inherit nothing — the declaration is server-side policy only.
func (r *Route) SLO(budget, cost time.Duration) *Route {
	m := r.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	r.slo.Budget = budget
	r.slo.Cost = cost
	m.recomposeLocked()
	return r
}

// ShedPriority declares how eagerly the route is sacrificed under
// overload (see RouteSLO.ShedPriority); p < 0 is clamped to 0.
func (r *Route) ShedPriority(p int) *Route {
	m := r.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if p < 0 {
		p = 0
	}
	r.slo.ShedPriority = p
	m.recomposeLocked()
	return r
}

// Method returns the wire method ID this route serves.
func (r *Route) Method() uint16 { return r.method }
