// Caller conformance suite: every Caller primitive must behave
// identically over the in-process transport (srv.NewClient) and the TCP
// transport (DialClient), so memnet and tcpnet cannot drift. The server
// under test is a Mux with method-tagged echo routes, an error route,
// and a one-way counter, which lets each subtest prove both the reply
// contents and the route the request actually took. Frame-version
// interop (v1/v2/v3 on one stream, version-mirrored replies) is checked
// at the raw socket level at the bottom.
package zygos

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/faultnet"
	"zygos/internal/proto"
	"zygos/internal/pubsub"
	"zygos/internal/tcpnet"
)

// Conformance-server routes. Method 0 is deliberately registered too:
// legacy (v2) traffic and v3 traffic naming method 0 must land on the
// same handler.
const (
	confEchoA  uint16 = 1
	confEchoB  uint16 = 2
	confErr    uint16 = 3
	confOne    uint16 = 4
	confShed   uint16 = 5
	confBudget uint16 = 6
	// confPush is the pub-sub topic the subscribe step publishes on; it
	// is a topic, not a request route.
	confPush uint16 = 7
)

// confShedHint is the retry-after hint the confShed route sheds with;
// steps assert it survives every transport byte-for-byte.
const confShedHint = 250 * time.Microsecond

// confEnv is what a conformance step needs beyond the Caller: the
// shared one-way counter and a flush that settles every server behind
// the transport (one for direct transports, front plus all backends
// for the cluster tier).
type confEnv struct {
	oneWays *atomic.Int64
	flush   func(timeout time.Duration) bool
	// publish emits one pub-sub frame on the server (or, for the cluster
	// tier, on a backend whose topic is relayed through the front) and
	// returns how many bus subscriptions matched at the publishing hop.
	publish func(topic uint16, frameID uint32, payload []byte) int
}

// newConformanceMux mounts the conformance routes on a fresh Mux,
// counting one-way executions in oneWays.
func newConformanceMux(oneWays *atomic.Int64) *Mux {
	mux := NewMux()
	// Echo routes reply [method:2 LE][payload]: the tag proves which
	// route ran and that Request.Method survived the trip.
	tagEcho := func(w ResponseWriter, req *Request) {
		var hdr [2]byte
		binary.LittleEndian.PutUint16(hdr[:], req.Method)
		w.Reply(append(hdr[:], req.Payload...))
	}
	mux.HandleFunc(0, tagEcho)
	mux.HandleFunc(confEchoA, tagEcho)
	mux.HandleFunc(confEchoB, tagEcho)
	mux.HandleFunc(confErr, func(w ResponseWriter, req *Request) {
		w.Error(StatusAppError, "route says no")
	})
	mux.HandleFunc(confOne, func(w ResponseWriter, req *Request) {
		if req.OneWay {
			oneWays.Add(1)
		}
		w.Reply(req.Payload)
	})
	// confShed always sheds with a retry-after hint, exactly as the
	// admission middleware would: the client-side contract (errors.Is
	// ErrShed, parseable hint) must hold over every transport, including
	// status preservation through the cluster tier's ProxyHandler.
	mux.HandleFunc(confShed, func(w ResponseWriter, req *Request) {
		w.Error(StatusShed, proto.FormatRetryAfter(confShedHint, "conformance shed"))
	})
	// confBudget reports what the handler saw of the wire deadline
	// budget: 8 bytes of little-endian remaining nanoseconds when the
	// request carried one, a single zero byte when it did not.
	mux.HandleFunc(confBudget, func(w ResponseWriter, req *Request) {
		rem, ok := req.RemainingBudget()
		if !ok {
			w.Reply([]byte{0})
			return
		}
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], uint64(rem))
		w.Reply(p[:])
	})
	return mux
}

// newConformanceServer mounts the conformance Mux and returns the
// server, a TCP address serving it, and the one-way counter.
func newConformanceServer(t *testing.T) (*Server, string, *atomic.Int64) {
	t.Helper()
	oneWays := new(atomic.Int64)
	srv, err := NewServer(Config{Cores: 2, Handler: newConformanceMux(oneWays).Handler()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	return srv, l.Addr().String(), oneWays
}

// newConformanceCluster builds the cluster-tier transport: three
// backend runtimes each serving the conformance Mux (sharing one
// one-way counter), fronted by a proxy server whose handler forwards
// through a hedging P2C cluster over in-process backend clients. The
// returned env's flush settles the front first (its handlers have
// forwarded by completion time), then every backend.
func newConformanceCluster(t *testing.T) (*Server, *ClusterCaller, *confEnv) {
	t.Helper()
	oneWays := new(atomic.Int64)
	mux := newConformanceMux(oneWays)
	backends := make([]*Server, 3)
	for i := range backends {
		b, err := NewServer(Config{Cores: 2, Handler: mux.Handler(), DepthFrames: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		backends[i] = b
	}
	cl := NewCluster(ClusterConfig{
		Policy: PolicyP2C,
		Hedge:  HedgeConfig{Enabled: true},
	})
	for i, b := range backends {
		cl.Add("backend-"+string(rune('a'+i)), b.NewClient())
	}
	front, err := NewServer(Config{Cores: 2, Handler: ProxyHandler(cl), DepthFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(front.Close)
	// PUSH forwarding across the proxy hop: the front subscribes to the
	// backend's push topic once and republishes into its own bus, so the
	// front's subscribers see frames published behind the ProxyHandler.
	relaySrc := backends[0].NewClient()
	t.Cleanup(relaySrc.Close)
	if _, err := RelayTopic(front, relaySrc, confPush, FilterAll(), SubscribeOptions{}); err != nil {
		t.Fatal(err)
	}
	env := &confEnv{
		oneWays: oneWays,
		publish: func(topic uint16, frameID uint32, payload []byte) int {
			return backends[0].Publish(topic, frameID, payload)
		},
		flush: func(timeout time.Duration) bool {
			if !front.Flush(timeout) {
				return false
			}
			for _, b := range backends {
				if !b.Flush(timeout) {
					return false
				}
			}
			return true
		},
	}
	return front, cl, env
}

// wantTagged asserts a [method:2][payload] reply.
func wantTagged(t *testing.T, resp []byte, method uint16, payload string) {
	t.Helper()
	if len(resp) < 2 {
		t.Fatalf("short reply %q", resp)
	}
	if got := binary.LittleEndian.Uint16(resp[:2]); got != method {
		t.Fatalf("request routed to method %d, want %d", got, method)
	}
	if string(resp[2:]) != payload {
		t.Fatalf("payload %q, want %q", resp[2:], payload)
	}
}

// TestCallerConformance drives the full Caller surface over both
// transports through one table of primitives.
func TestCallerConformance(t *testing.T) {
	srv, addr, oneWays := newConformanceServer(t)

	steps := []struct {
		name string
		run  func(t *testing.T, c Caller, env *confEnv)
	}{
		{"Call routes to method 0", func(t *testing.T, c Caller, env *confEnv) {
			resp, err := c.Call([]byte("legacy"))
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, 0, "legacy")
		}},
		{"CallInto matches Call", func(t *testing.T, c Caller, env *confEnv) {
			buf := make([]byte, 0, 64)
			resp, err := c.CallInto([]byte("into"), buf)
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, 0, "into")
		}},
		{"CallMethod routes by method", func(t *testing.T, c Caller, env *confEnv) {
			for _, m := range []uint16{confEchoA, confEchoB, 0} {
				resp, err := c.CallMethod(m, []byte("routed"))
				if err != nil {
					t.Fatalf("method %d: %v", m, err)
				}
				wantTagged(t, resp, m, "routed")
			}
		}},
		{"CallMethodInto matches CallMethod", func(t *testing.T, c Caller, env *confEnv) {
			var buf []byte
			for i := 0; i < 3; i++ {
				resp, err := c.CallMethodInto(confEchoB, []byte("mi"), buf[:0])
				if err != nil {
					t.Fatal(err)
				}
				wantTagged(t, resp, confEchoB, "mi")
				buf = resp
			}
		}},
		{"SendAsync routes to method 0", func(t *testing.T, c Caller, env *confEnv) {
			done := make(chan []byte, 1)
			if err := c.SendAsync([]byte("async"), func(resp []byte, err error) {
				if err != nil {
					t.Errorf("SendAsync: %v", err)
				}
				done <- append([]byte(nil), resp...)
			}); err != nil {
				t.Fatal(err)
			}
			wantTagged(t, <-done, 0, "async")
		}},
		{"SendMethodAsync routes by method", func(t *testing.T, c Caller, env *confEnv) {
			done := make(chan []byte, 1)
			if err := c.SendMethodAsync(confEchoA, []byte("masync"), func(resp []byte, err error) {
				if err != nil {
					t.Errorf("SendMethodAsync: %v", err)
				}
				done <- append([]byte(nil), resp...)
			}); err != nil {
				t.Fatal(err)
			}
			wantTagged(t, <-done, confEchoA, "masync")
		}},
		{"SendOneWay and SendMethodOneWay execute without replies", func(t *testing.T, c Caller, env *confEnv) {
			before := env.oneWays.Load()
			if err := c.SendMethodOneWay(confOne, []byte("ow1")); err != nil {
				t.Fatal(err)
			}
			if err := c.SendOneWay([]byte("ow-legacy")); err != nil {
				t.Fatal(err)
			}
			// A round trip on the same connection orders us behind the
			// one-ways and proves nothing stray arrived in their place.
			resp, err := c.CallMethod(confEchoA, []byte("after"))
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, confEchoA, "after")
			if !env.flush(5 * time.Second) {
				t.Fatal("flush timed out")
			}
			// Only the method-routed one-way hits the counting route; the
			// legacy one lands on method 0's echo (suppressed reply).
			if got := env.oneWays.Load(); got != before+1 {
				t.Fatalf("one-way handler ran %d times, want %d", got, before+1)
			}
		}},
		{"CallTimeout and CallMethodTimeout complete within budget", func(t *testing.T, c Caller, env *confEnv) {
			resp, err := c.CallMethodTimeout(confEchoB, []byte("dl"), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, confEchoB, "dl")
			resp, err = c.CallTimeout([]byte("dl-legacy"), 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, 0, "dl-legacy")
			// d < 0 disables the deadline; the call must still complete.
			resp, err = c.CallMethodTimeout(confEchoA, []byte("dl-off"), -1)
			if err != nil {
				t.Fatal(err)
			}
			wantTagged(t, resp, confEchoA, "dl-off")
		}},
		{"deadline budgets ride the wire to the handler", func(t *testing.T, c Caller, env *confEnv) {
			// Without a deadline the handler must see no budget at all —
			// a transport inventing one would make servers shed work
			// nobody asked them to.
			resp, err := c.CallMethod(confBudget, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp) != 1 {
				t.Fatalf("bare call arrived with a budget: reply %x", resp)
			}
			// CallMethodTimeout doubles as the wire budget: the handler
			// sees the remaining time, already decremented by however
			// many hops the request crossed (the cluster transport
			// forwards it through the proxy tier).
			const budget = 5 * time.Second
			resp, err = c.CallMethodTimeout(confBudget, nil, budget)
			if err != nil {
				t.Fatal(err)
			}
			if len(resp) != 8 {
				t.Fatalf("budgeted call reply %x, want 8-byte remaining", resp)
			}
			rem := time.Duration(int64(binary.LittleEndian.Uint64(resp)))
			if rem <= 0 || rem > budget {
				t.Fatalf("handler saw remaining budget %v, want in (0, %v]", rem, budget)
			}
		}},
		{"SendMethodBudgetAsync stamps an explicit budget", func(t *testing.T, c Caller, env *confEnv) {
			bc, ok := c.(BudgetCaller)
			if !ok {
				t.Fatalf("%T does not implement BudgetCaller", c)
			}
			call := func(d time.Duration) []byte {
				t.Helper()
				done := make(chan []byte, 1)
				if err := bc.SendMethodBudgetAsync(confBudget, nil, d, func(resp []byte, err error) {
					if err != nil {
						t.Errorf("SendMethodBudgetAsync(%v): %v", d, err)
					}
					done <- append([]byte(nil), resp...)
				}); err != nil {
					t.Fatal(err)
				}
				return <-done
			}
			const budget = 2 * time.Second
			resp := call(budget)
			if len(resp) != 8 {
				t.Fatalf("budgeted send reply %x, want 8-byte remaining", resp)
			}
			rem := time.Duration(int64(binary.LittleEndian.Uint64(resp)))
			if rem <= 0 || rem > budget {
				t.Fatalf("handler saw remaining budget %v, want in (0, %v]", rem, budget)
			}
			// d <= 0 means no budget, not a zero budget.
			if resp := call(0); len(resp) != 1 {
				t.Fatalf("zero-budget send arrived with a budget: reply %x", resp)
			}
		}},
		{"shed replies are ErrShed with a retry-after hint", func(t *testing.T, c Caller, env *confEnv) {
			_, err := c.CallMethod(confShed, []byte("x"))
			if !errors.Is(err, ErrShed) {
				t.Fatalf("got %v, want errors.Is ErrShed", err)
			}
			if d, ok := RetryAfter(err); !ok || d != confShedHint {
				t.Fatalf("RetryAfter = %v, %v; want %v, true", d, ok, confShedHint)
			}
		}},
		{"StatusError propagates from routes", func(t *testing.T, c Caller, env *confEnv) {
			resp, err := c.CallMethod(confErr, []byte("x"))
			if resp != nil {
				t.Fatalf("error reply carried payload %q", resp)
			}
			var se *StatusError
			if !errors.As(err, &se) || se.Code != StatusAppError || se.Msg != "route says no" {
				t.Fatalf("got %v, want StatusAppError", err)
			}
		}},
		{"Subscribe receives filtered pushes; Unsubscribe stops them", func(t *testing.T, c Caller, env *confEnv) {
			sc, ok := c.(Subscriber)
			if !ok {
				t.Fatalf("%T does not implement Subscriber", c)
			}
			type push struct {
				id      uint32
				payload string
			}
			got := make(chan push, 16)
			sub, err := sc.Subscribe(confPush, FilterRange(100, 199), SubscribeOptions{}, func(id uint32, payload []byte) {
				got <- push{id: id, payload: string(payload)}
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := env.publish(confPush, 150, []byte("in-range-1")); n < 1 {
				t.Fatalf("publish matched %d subscriptions", n)
			}
			env.publish(confPush, 50, []byte("out-of-range")) // filtered out
			env.publish(confPush, 199, []byte("in-range-2"))
			next := func() push {
				t.Helper()
				select {
				case p := <-got:
					return p
				case <-time.After(5 * time.Second):
					t.Fatal("push never arrived")
					return push{}
				}
			}
			// Per-subscription delivery is FIFO, so receiving both in-range
			// frames in order with nothing in between proves the
			// out-of-range frame was filtered, not merely late.
			if p := next(); p.id != 150 || p.payload != "in-range-1" {
				t.Fatalf("first push %+v", p)
			}
			if p := next(); p.id != 199 || p.payload != "in-range-2" {
				t.Fatalf("second push %+v", p)
			}
			if err := sub.Unsubscribe(); err != nil {
				t.Fatal(err)
			}
			env.publish(confPush, 151, []byte("after-unsubscribe"))
			select {
			case p := <-got:
				t.Fatalf("push after unsubscribe: %+v", p)
			case <-time.After(100 * time.Millisecond):
			}
		}},
		{"unregistered method returns StatusNoMethod", func(t *testing.T, c Caller, env *confEnv) {
			_, err := c.CallMethod(60000, []byte("x"))
			var se *StatusError
			if !errors.As(err, &se) || se.Code != StatusNoMethod {
				t.Fatalf("got %v, want StatusNoMethod", err)
			}
			// The connection survives.
			if resp, err := c.CallMethod(confEchoA, []byte("alive")); err != nil {
				t.Fatal(err)
			} else {
				wantTagged(t, resp, confEchoA, "alive")
			}
		}},
	}

	// A second listener served by a transport forced onto the portable
	// deadline-scan poller, so the suite exercises both poller
	// implementations regardless of host OS. It shares the conformance
	// runtime: same Mux, same counters.
	ptcp := tcpnet.NewServer(srv.rt, tcpnet.WithPortablePoller())
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ptcp.Serve(pl)
	t.Cleanup(ptcp.Close)
	pollAddr := pl.Addr().String()

	// A third listener whose accepted conns inject benign byte-level
	// faults — write latency and partial writes — that reorder the
	// server's write timing without altering the byte stream. Every
	// conformance step must still pass verbatim: short reads and delayed
	// replies are not allowed to be observable at the RPC layer. (The
	// wrapped conns also lack syscall.Conn, so this doubles as coverage
	// for the per-conn fallback onto the portable poller.)
	fll, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flaky := faultnet.WrapListener(fll, faultnet.Plan{Seed: 42, PPartial: 0.5, PDelay: 0.25})
	go srv.Serve(flaky)
	t.Cleanup(func() { fll.Close() })
	flakyAddr := fll.Addr().String()

	// Direct transports share the conformance server's env; the cluster
	// variant builds its own tier (front proxy over three backends) and
	// must settle every server in it.
	baseEnv := &confEnv{oneWays: oneWays, flush: srv.Flush, publish: srv.Publish}

	transports := []struct {
		name string
		dial func(t *testing.T) (Caller, *confEnv)
	}{
		{"inproc", func(t *testing.T) (Caller, *confEnv) { return srv.NewClient(), baseEnv }},
		{"tcp", func(t *testing.T) (Caller, *confEnv) {
			c, err := DialClient(addr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return c, baseEnv
		}},
		{"tcp-portable-poller", func(t *testing.T) (Caller, *confEnv) {
			c, err := DialClient(pollAddr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return c, baseEnv
		}},
		{"flaky-tcp", func(t *testing.T) (Caller, *confEnv) {
			c, err := DialClient(flakyAddr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return c, baseEnv
		}},
		{"connmanager", func(t *testing.T) (Caller, *confEnv) {
			m := NewConnManager(addr, 2, 5*time.Second)
			t.Cleanup(m.Close)
			c, err := m.NewCaller()
			if err != nil {
				t.Fatal(err)
			}
			return c, baseEnv
		}},
		{"cluster", func(t *testing.T) (Caller, *confEnv) {
			front, _, env := newConformanceCluster(t)
			return front.NewClient(), env
		}},
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			c, env := tr.dial(t)
			defer c.Close()
			for _, step := range steps {
				t.Run(step.name, func(t *testing.T) { step.run(t, c, env) })
			}
		})
	}
}

// TestConnChurnNoLeaks cycles clients — plain TCP and managed — through
// connect/call/close and proves the transport returns every pooled
// buffer: the runtime ends with zero live ingress segments and the
// process-wide bufpool checkout count returns to its starting snapshot.
// (Outstanding is compared against a snapshot rather than literal zero
// because components owned by other parts of the process may retain
// pooled buffers legitimately; the churn itself must net to zero.)
func TestConnChurnNoLeaks(t *testing.T) {
	srv, addr, _ := newConformanceServer(t)

	// A reset-injecting listener for the mid-call-reset leg of the
	// churn: some replies die half-written, so clients see truncated
	// streams, EOFs, and calls still in flight at Close — the teardown
	// orderings most likely to strand a pooled buffer.
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(faultnet.WrapListener(rl, faultnet.Plan{Seed: 99, PReset: 0.25, PPartial: 0.25}))
	t.Cleanup(func() { rl.Close() })
	resetAddr := rl.Addr().String()

	outBefore := bufpool.Outstanding()
	const cycles = 40
	for i := 0; i < cycles; i++ {
		c, err := DialClient(addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.CallMethod(confEchoA, []byte("churn")); err != nil {
			c.Close()
			t.Fatal(err)
		}
		c.Close()

		m := NewConnManager(addr, 1, 5*time.Second)
		mc, err := m.NewCaller()
		if err != nil {
			m.Close()
			t.Fatal(err)
		}
		if _, err := mc.CallMethod(confEchoB, []byte("churn")); err != nil {
			m.Close()
			t.Fatal(err)
		}
		m.Close()

		// Mid-call resets: a bounded call that may die to an injected
		// reset, then a close with an async call still in flight. Errors
		// are expected; leaked buffers are not.
		rc, err := DialClient(resetAddr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = rc.CallMethodTimeout(confEchoA, []byte("reset-churn"), 2*time.Second)
		_ = rc.SendAsync([]byte("mid"), func([]byte, error) {})
		rc.Close()
	}
	if !srv.Flush(10 * time.Second) {
		t.Fatal("flush timed out after churn")
	}

	// Teardown is asynchronous on both ends (poller notices the close,
	// read loops drain); poll until the accounting settles.
	deadline := time.Now().Add(10 * time.Second)
	for {
		segs := srv.rt.SegmentsLive()
		out := bufpool.Outstanding()
		// Each running poller retains one read-scratch segment; the
		// conformance server keeps serving after this test, so allow
		// exactly that residue and nothing per-connection. The
		// Outstanding comparison is skipped under the race detector:
		// sync.Pool drops Puts in race mode, so parse-buffer blocks
		// parked inside dropped parseBuf structs read as checked out
		// forever even though nothing actually leaks.
		pollers := int64(srv.tcp.NetStats().Pollers)
		if segs <= pollers && (raceEnabled || out <= outBefore+pollers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak after %d churn cycles: SegmentsLive=%d (pollers=%d) Outstanding=%d (start %d)",
				cycles, segs, pollers, out, outBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWireVersionInterop speaks raw frames to a routed server: a v1
// client, a v2 client, and a v3 client share one server, every reply
// mirrors its request's version, and the v3 reply echoes the method.
func TestWireVersionInterop(t *testing.T) {
	_, addr, _ := newConformanceServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	// Pipeline one frame of each version on one connection.
	var stream []byte
	stream = proto.AppendFrame(stream, proto.Message{ID: 1, Payload: []byte("v1")})
	stream = proto.AppendFrameV2(stream, proto.Message{ID: 2, Payload: []byte("v2")})
	stream = proto.AppendFrameV3(stream, proto.Message{ID: 3, Method: confEchoB, Payload: []byte("v3")})
	if _, err := nc.Write(stream); err != nil {
		t.Fatal(err)
	}

	// v1 reply: 12-byte header, no magic, payload tagged method 0.
	var h1 [proto.HeaderSize]byte
	if _, err := io.ReadFull(nc, h1[:]); err != nil {
		t.Fatal(err)
	}
	if h1[3] == proto.Magic2 || h1[3] == proto.Magic3 {
		t.Fatalf("v1 request answered with magic %#x; a v1 client cannot parse it", h1[3])
	}
	n1 := binary.LittleEndian.Uint32(h1[0:4])
	if id := binary.LittleEndian.Uint64(h1[4:12]); id != 1 {
		t.Fatalf("v1 reply id %d", id)
	}
	b1 := make([]byte, n1)
	if _, err := io.ReadFull(nc, b1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, append([]byte{0, 0}, []byte("v1")...)) {
		t.Fatalf("v1 reply %q: must route to method 0", b1)
	}

	// v2 reply: Magic2 header, method-0 tagged payload.
	var h2 [proto.HeaderSizeV2]byte
	if _, err := io.ReadFull(nc, h2[:]); err != nil {
		t.Fatal(err)
	}
	if h2[3] != proto.Magic2 {
		t.Fatalf("v2 request answered with magic %#x, want v2 mirror", h2[3])
	}
	n2 := int(h2[0]) | int(h2[1])<<8 | int(h2[2])<<16
	if id := binary.LittleEndian.Uint64(h2[6:14]); id != 2 {
		t.Fatalf("v2 reply id %d", id)
	}
	b2 := make([]byte, n2)
	if _, err := io.ReadFull(nc, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2, append([]byte{0, 0}, []byte("v2")...)) {
		t.Fatalf("v2 reply %q: must route to method 0", b2)
	}

	// v3 reply: Magic3 header echoing the method, tagged payload.
	var h3 [proto.HeaderSizeV3]byte
	if _, err := io.ReadFull(nc, h3[:]); err != nil {
		t.Fatal(err)
	}
	if h3[3] != proto.Magic3 {
		t.Fatalf("v3 request answered with magic %#x, want v3 mirror", h3[3])
	}
	if m := binary.LittleEndian.Uint16(h3[6:8]); m != confEchoB {
		t.Fatalf("v3 reply header method %d, want %d", m, confEchoB)
	}
	if id := binary.LittleEndian.Uint64(h3[8:16]); id != 3 {
		t.Fatalf("v3 reply id %d", id)
	}
	n3 := int(h3[0]) | int(h3[1])<<8 | int(h3[2])<<16
	b3 := make([]byte, n3)
	if _, err := io.ReadFull(nc, b3); err != nil {
		t.Fatal(err)
	}
	var tag [2]byte
	binary.LittleEndian.PutUint16(tag[:], confEchoB)
	if !bytes.Equal(b3, append(tag[:], []byte("v3")...)) {
		t.Fatalf("v3 reply %q: must route to method %d", b3, confEchoB)
	}
}

// TestWireV4Interop pipelines all four frame versions on one raw
// socket: the v1/v2/v3 RPCs round-trip untouched, the v4 SUBSCRIBE is
// acked with a version-mirrored v4 frame, a published frame arrives as
// a well-formed v4 PUSH carrying the subscription ID, and the
// connection keeps serving v2 RPCs afterwards.
func TestWireV4Interop(t *testing.T) {
	srv, addr, _ := newConformanceServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))

	const subID = 0xBEEF
	spec, err := pubsub.AppendSubSpec(nil, pubsub.SubSpec{Filter: pubsub.Exact(321)})
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream = proto.AppendFrame(stream, proto.Message{ID: 1, Payload: []byte("v1")})
	stream = proto.AppendFrameV2(stream, proto.Message{ID: 2, Payload: []byte("v2")})
	stream = proto.AppendFrameV3(stream, proto.Message{ID: 3, Method: confEchoA, Payload: []byte("v3")})
	stream = proto.AppendFrameV4(stream, proto.Message{ID: 4, Method: confPush, SubID: subID, Kind: proto.KindSubscribe, Payload: spec})
	if _, err := nc.Write(stream); err != nil {
		t.Fatal(err)
	}

	// readFrame pulls one whole frame of any version off the socket and
	// returns it parsed.
	var p proto.Parser
	defer p.ReleaseBuffer()
	rbuf := make([]byte, 4096)
	readFrame := func() proto.Message {
		t.Helper()
		for {
			if m, ok, err := p.Next(); err != nil {
				t.Fatalf("parse: %v", err)
			} else if ok {
				return m
			}
			n, err := nc.Read(rbuf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			p.Feed(rbuf[:n])
		}
	}

	// Replies mirror their request versions, v1/v2/v3 exactly as before
	// the v4 extension existed.
	r1 := readFrame()
	if r1.V2 || r1.V3 || r1.V4 || r1.ID != 1 {
		t.Fatalf("v1 reply %+v", r1)
	}
	r1.Release()
	r2 := readFrame()
	if !r2.V2 || r2.V3 || r2.V4 || r2.ID != 2 {
		t.Fatalf("v2 reply %+v", r2)
	}
	r2.Release()
	r3 := readFrame()
	if !r3.V3 || r3.V4 || r3.ID != 3 || r3.Method != confEchoA {
		t.Fatalf("v3 reply %+v", r3)
	}
	r3.Release()
	ack := readFrame()
	if !ack.V4 || ack.Kind != proto.KindSubscribe || ack.ID != 4 || ack.SubID != subID || ack.Status != proto.StatusOK {
		t.Fatalf("SUBSCRIBE ack %+v", ack)
	}
	ack.Release()

	// A published frame matching the exact filter arrives as a PUSH; a
	// non-matching one does not (FIFO per subscription, so the matching
	// frame arriving alone proves it).
	srv.Publish(confPush, 999, []byte("filtered-out"))
	if n := srv.Publish(confPush, 321, []byte("pushed")); n != 1 {
		t.Fatalf("publish matched %d", n)
	}
	pushMsg := readFrame()
	if !pushMsg.V4 || pushMsg.Kind != proto.KindPush || pushMsg.SubID != subID {
		t.Fatalf("PUSH frame %+v", pushMsg)
	}
	if uint32(pushMsg.ID) != 321 || string(pushMsg.Payload) != "pushed" {
		t.Fatalf("PUSH content id=%d payload=%q", pushMsg.ID, pushMsg.Payload)
	}
	pushMsg.Release()

	// UNSUBSCRIBE is acked and the connection still serves RPCs.
	if _, err := nc.Write(proto.AppendFrameV4(nil, proto.Message{ID: 5, Method: confPush, SubID: subID, Kind: proto.KindUnsubscribe})); err != nil {
		t.Fatal(err)
	}
	uack := readFrame()
	if !uack.V4 || uack.Kind != proto.KindUnsubscribe || uack.ID != 5 || uack.Status != proto.StatusOK {
		t.Fatalf("UNSUBSCRIBE ack %+v", uack)
	}
	uack.Release()
	if _, err := nc.Write(proto.AppendFrameV2(nil, proto.Message{ID: 6, Payload: []byte("still-v2")})); err != nil {
		t.Fatal(err)
	}
	r6 := readFrame()
	if !r6.V2 || r6.ID != 6 || !bytes.Equal(r6.Payload, append([]byte{0, 0}, []byte("still-v2")...)) {
		t.Fatalf("post-unsubscribe v2 reply %+v", r6)
	}
	r6.Release()
}
