// Hot-path microbenchmarks: the request/reply data path in isolation,
// reported as ns/op and allocs/op. These are the numbers BENCH_hotpath.json
// tracks across PRs (`make bench` regenerates the "current" section); the
// steady-state target is zero allocations per operation on the echo path.
//
// The four shapes cover the paths the scheduler distinguishes:
//
//   - MemnetEcho: closed-loop round trip over the in-memory transport —
//     parser, event queue, activation, reply encode, TX sequencer.
//   - PipelinedV2: open-loop with a deep window of v2 frames on one
//     connection, the §4.3 pipelining case; reply batches coalesce.
//   - StealHeavy: all load homed on worker 0 of four, so most activations
//     are steals and replies travel the remote-syscall path home.
//   - DetachHeavy: every handler detaches and completes immediately,
//     exercising the detached-completion path without goroutine overhead.
package zygos

import (
	"sync"
	"testing"
	"time"
)

func newBenchEchoServer(b *testing.B, cores int) *Server {
	b.Helper()
	srv, err := NewServer(Config{
		Cores:   cores,
		Handler: func(w ResponseWriter, req *Request) { w.Reply(req.Payload) },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkHotPathMemnetEcho measures the closed-loop echo round trip over
// the in-memory transport with a caller-owned reply buffer (CallInto), the
// zero-allocation configuration.
func BenchmarkHotPathMemnetEcho(b *testing.B) {
	srv := newBenchEchoServer(b, 2)
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("0123456789abcdef")
	var buf []byte
	// Warm the pools before measuring.
	for i := 0; i < 128; i++ {
		r, err := c.CallInto(payload, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.CallInto(payload, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = r
	}
}

// BenchmarkHotPathPipelinedV2 measures open-loop throughput with a deep
// pipeline of v2-framed requests on a single connection.
func BenchmarkHotPathPipelinedV2(b *testing.B) {
	srv := newBenchEchoServer(b, 2)
	c := srv.NewClient()
	defer c.Close()
	const window = 128
	payload := []byte("0123456789abcdef0123456789abcdef")
	var wg sync.WaitGroup
	cb := func([]byte, error) { wg.Done() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		if err := c.SendAsync(payload, cb); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			wg.Wait()
		}
	}
	wg.Wait()
}

// BenchmarkHotPathStealHeavy homes every connection on worker 0 of four,
// so under pipelined load most activations are steals and their replies
// ship home through the remote-syscall path.
func BenchmarkHotPathStealHeavy(b *testing.B) {
	srv, err := NewServer(Config{
		Cores: 4,
		Handler: func(w ResponseWriter, req *Request) {
			// A short spin makes stealing worthwhile relative to the
			// scheduling cost, as in the paper's 10µs tasks (scaled down).
			deadline := time.Now().Add(2 * time.Microsecond)
			for time.Now().Before(deadline) {
			}
			w.Reply(req.Payload)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	var skewed []*Client
	for len(skewed) < 8 {
		c := srv.NewClient()
		if c.Home() == 0 {
			skewed = append(skewed, c)
		} else {
			c.Close()
		}
	}
	defer func() {
		for _, c := range skewed {
			c.Close()
		}
	}()
	const window = 64
	payload := []byte("steal")
	var wg sync.WaitGroup
	cb := func([]byte, error) { wg.Done() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(1)
		if err := skewed[i%len(skewed)].SendAsync(payload, cb); err != nil {
			b.Fatal(err)
		}
		if i%window == window-1 {
			wg.Wait()
		}
	}
	wg.Wait()
}

// BenchmarkHotPathDetachHeavy detaches every request and completes it
// immediately, so each reply travels the detached-completion path (the
// remote-syscall queue) rather than the synchronous batch.
func BenchmarkHotPathDetachHeavy(b *testing.B) {
	srv, err := NewServer(Config{
		Cores: 2,
		Handler: func(w ResponseWriter, req *Request) {
			co := w.Detach()
			co.Reply(req.Payload)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("detach")
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.CallInto(payload, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = r
	}
}
