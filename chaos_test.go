// Chaos soak: seeded fault-injection runs over the full stack. Each
// scenario drives a conformance workload through faultnet wrappers —
// caller-level faults over in-process backends, byte-level faults over
// TCP — and asserts the failure-domain invariants: every op settles
// exactly once, deadlines bound every blocking call, breakers trip and
// readmit, and buffer accounting returns to its starting snapshot.
//
// Runs are reproducible: a failing seed replays with
// CHAOS_SEEDS=<n> (seed count) and CHAOS_OPS=<n> (ops per seed). CI
// smoke uses a short seed matrix; `make chaos-soak` runs the long one.
package zygos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"zygos/internal/bufpool"
	"zygos/internal/faultnet"
)

// chaosEnvInt reads a positive integer knob from the environment.
func chaosEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

func chaosSeedCount(t *testing.T) int {
	if testing.Short() {
		return 2
	}
	return chaosEnvInt("CHAOS_SEEDS", 8)
}

func chaosOps() int { return chaosEnvInt("CHAOS_OPS", 200) }

// TestChaosClusterFaultyBackends soaks the cluster tier over three
// in-process backends whose transports inject resets, blackholes,
// dropped replies, latency, and depth-report loss. The invariants under
// fire: every issued op settles exactly once (deadline, failover, or
// reply), blocking calls return within their budget, and after teardown
// the runtimes hold zero live segments and the bufpool checkout count
// returns to its snapshot.
func TestChaosClusterFaultyBackends(t *testing.T) {
	ops := chaosOps()
	// Per-seed bufpool checkouts after teardown. The runtime's event
	// pool legitimately retains reply-frame buffers up to the peak
	// concurrency high-water (see TestConnChurnNoLeaks), so the leak
	// invariant is cross-seed: the count must stop growing once the
	// first seeds establish the high-water, not return to zero.
	var endOutstanding []int64
	for s := 0; s < chaosSeedCount(t); s++ {
		seed := int64(s + 1)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oneWays := new(atomic.Int64)
			mux := newConformanceMux(oneWays)
			backends := make([]*Server, 3)
			for i := range backends {
				b, err := NewServer(Config{Cores: 2, Handler: mux.Handler(), DepthFrames: true})
				if err != nil {
					t.Fatal(err)
				}
				backends[i] = b
			}
			cl := NewCluster(ClusterConfig{
				Policy:      PolicyP2C,
				Hedge:       HedgeConfig{Enabled: true, MinDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
				CallTimeout: 250 * time.Millisecond,
				Breaker:     BreakerConfig{Cooldown: 5 * time.Millisecond},
			})
			faulty := make([]*faultnet.FaultyCaller, len(backends))
			for i, b := range backends {
				faulty[i] = faultnet.WrapCaller(b.NewClient(), faultnet.Plan{
					Seed:       seed*31 + int64(i),
					PReset:     0.05,
					PBlackhole: 0.03,
					PDropReply: 0.03,
					PDelay:     0.20,
					PDropDepth: 0.50,
				})
				cl.Add(fmt.Sprintf("b%d", i), faulty[i])
			}

			var settles, doubles, okCount atomic.Int64
			flags := make([]atomic.Bool, ops)
			for i := 0; i < ops; i++ {
				i := i
				err := cl.SendMethodAsync(confEchoA, []byte("chaos"), func(resp []byte, err error) {
					if flags[i].Swap(true) {
						doubles.Add(1)
					}
					if err == nil {
						okCount.Add(1)
					}
					settles.Add(1)
				})
				if err != nil {
					// A synchronous refusal settles the op at the call site;
					// the callback will never run for it.
					if flags[i].Swap(true) {
						doubles.Add(1)
					}
					settles.Add(1)
				}
			}

			// Blocking calls race the same chaos: each must return within
			// its deadline budget no matter what the injector does.
			for i := 0; i < 16; i++ {
				start := time.Now()
				_, err := cl.CallMethodTimeout(confEchoA, []byte("blocking"), 100*time.Millisecond)
				if el := time.Since(start); el > 5*time.Second {
					t.Fatalf("blocking call %d took %v (err=%v); deadline did not bound it", i, el, err)
				}
			}

			deadline := time.Now().Add(30 * time.Second)
			for settles.Load() < int64(ops) {
				if time.Now().After(deadline) {
					t.Fatalf("hang: %d/%d ops settled (seed %d, faults %+v %+v %+v)",
						settles.Load(), ops, seed,
						faulty[0].FaultStats(), faulty[1].FaultStats(), faulty[2].FaultStats())
				}
				time.Sleep(5 * time.Millisecond)
			}
			if d := doubles.Load(); d != 0 {
				t.Fatalf("%d ops settled more than once", d)
			}
			if ok := okCount.Load(); ok < int64(ops)/4 {
				t.Fatalf("only %d/%d ops succeeded; fault rates should leave most survivable", ok, ops)
			}

			cl.Close()
			// Teardown: every ingress segment must drain.
			lkDeadline := time.Now().Add(10 * time.Second)
			for {
				var live int64
				for _, b := range backends {
					live += b.rt.SegmentsLive()
				}
				if live == 0 {
					break
				}
				if time.Now().After(lkDeadline) {
					t.Fatalf("leak after chaos: SegmentsLive=%d", live)
				}
				time.Sleep(10 * time.Millisecond)
			}
			for _, b := range backends {
				b.Close()
			}
			endOutstanding = append(endOutstanding, bufpool.Outstanding())
		})
	}
	// Bounded accounting: identical workloads per seed mean the event
	// pool's high-water is set by the early seeds; a per-op leak would
	// keep climbing seed over seed. (Skipped under -race: sync.Pool
	// drops Puts there, so checkouts read as lost forever.)
	if !raceEnabled && len(endOutstanding) >= 3 {
		allow := endOutstanding[0]
		if endOutstanding[1] > allow {
			allow = endOutstanding[1]
		}
		allow += 64
		if last := endOutstanding[len(endOutstanding)-1]; last > allow {
			t.Fatalf("bufpool checkouts grew across seeds: %v (allowance %d)", endOutstanding, allow)
		}
	}
}

// TestChaosTCPCorruptStream soaks the TCP path through a fault-wrapped
// listener injecting corrupt frames, partial writes, resets, and write
// latency into server replies. Corruption may poison a connection (the
// client parser refuses the stream) or silently alter a payload, so the
// only assertions are liveness ones: every blocking call returns within
// its deadline, a timed-out manager is replaced and the workload
// continues, and teardown leaks nothing.
func TestChaosTCPCorruptStream(t *testing.T) {
	srv, _, _ := newConformanceServer(t)
	ops := chaosOps()
	if ops > 64 {
		ops = 64 // a wedged (corrupt-length) conn costs a deadline per call; keep the soak bounded
	}
	for s := 0; s < chaosSeedCount(t); s++ {
		seed := int64(s + 1)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := faultnet.WrapListener(l, faultnet.Plan{
				Seed:     seed,
				PCorrupt: 0.02,
				PPartial: 0.30,
				PReset:   0.03,
				PDelay:   0.10,
			})
			go srv.Serve(fl)
			t.Cleanup(func() { l.Close() })
			addr := l.Addr().String()

			m := NewConnManager(addr, 2, 5*time.Second)
			mc, err := m.NewCaller()
			if err != nil {
				t.Fatal(err)
			}
			var okCount, errCount int
			for i := 0; i < ops; i++ {
				start := time.Now()
				_, cerr := mc.CallMethodTimeout(confEchoA, []byte("tcp-chaos"), 500*time.Millisecond)
				if el := time.Since(start); el > 10*time.Second {
					t.Fatalf("call %d took %v; deadline did not bound it", i, el)
				}
				if cerr == nil {
					okCount++
					continue
				}
				errCount++
				if errors.Is(cerr, ErrCallTimeout) {
					// The deadline is the only wedge detector a client has:
					// a corrupt length field leaves the conn open but mute.
					// Replace the manager, as an application would.
					m.Close()
					m = NewConnManager(addr, 2, 5*time.Second)
					if mc, err = m.NewCaller(); err != nil {
						t.Fatal(err)
					}
				}
			}
			m.Close()
			if okCount == 0 {
				t.Fatalf("no call survived the fault plan (errs=%d, faults %+v)", errCount, fl.FaultStats())
			}

			if !srv.Flush(10 * time.Second) {
				t.Fatal("flush timed out")
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				segs := srv.rt.SegmentsLive()
				pollers := int64(srv.tcp.NetStats().Pollers)
				if segs <= pollers {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("leak after TCP chaos: SegmentsLive=%d pollers=%d (faults %+v)",
						segs, pollers, fl.FaultStats())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestChaosBlackholeDeadline: a call against a fully blackholed backend
// must return ErrCallTimeout within its deadline budget — both the
// configured default and a per-call override.
func TestChaosBlackholeDeadline(t *testing.T) {
	oneWays := new(atomic.Int64)
	b, err := NewServer(Config{Cores: 2, Handler: newConformanceMux(oneWays).Handler()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	cl := NewCluster(ClusterConfig{
		Policy:      PolicyJSQ,
		CallTimeout: 50 * time.Millisecond,
	})
	cl.Add("blackhole", faultnet.WrapCaller(b.NewClient(), faultnet.Plan{PBlackhole: 1}))
	t.Cleanup(cl.Close)

	start := time.Now()
	_, err = cl.CallMethod(confEchoA, []byte("x"))
	el := time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if el < 40*time.Millisecond || el > 5*time.Second {
		t.Fatalf("default deadline fired after %v, want ~50ms", el)
	}

	start = time.Now()
	_, err = cl.CallMethodTimeout(confEchoA, []byte("x"), 20*time.Millisecond)
	el = time.Since(start)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("override err = %v, want ErrCallTimeout", err)
	}
	if el > 5*time.Second {
		t.Fatalf("override deadline fired after %v", el)
	}
	if got := cl.Stats().DeadlinesExpired; got != 2 {
		t.Fatalf("DeadlinesExpired = %d, want 2", got)
	}
}

// TestChaosBreakerKillRecover kills one backend of three under live
// load (every send through it resets), proves the breaker trips and the
// cluster keeps serving, then restores the backend and proves a probe
// readmits it.
func TestChaosBreakerKillRecover(t *testing.T) {
	oneWays := new(atomic.Int64)
	mux := newConformanceMux(oneWays)
	backends := make([]*Server, 3)
	for i := range backends {
		b, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		backends[i] = b
	}

	var down atomic.Bool
	script := func(op uint64) (faultnet.Action, bool) {
		if down.Load() {
			return faultnet.Reset, true
		}
		return faultnet.Pass, true
	}
	cl := NewCluster(ClusterConfig{
		Policy:      PolicyJSQ,
		CallTimeout: 2 * time.Second,
		Breaker:     BreakerConfig{Threshold: 3, Cooldown: 20 * time.Millisecond},
	})
	cl.Add("victim", faultnet.WrapCaller(backends[0].NewClient(), faultnet.Plan{Script: script}))
	cl.Add("b1", backends[1].NewClient())
	cl.Add("b2", backends[2].NewClient())
	t.Cleanup(cl.Close)

	victimState := func() string {
		for _, b := range cl.Stats().Backends {
			if b.Name == "victim" {
				return b.State
			}
		}
		return "?"
	}

	// Healthy baseline.
	for i := 0; i < 50; i++ {
		if _, err := cl.CallMethod(confEchoA, []byte("warm")); err != nil {
			t.Fatalf("baseline call %d: %v", i, err)
		}
	}

	// Kill the victim: every send through it now resets. Failover keeps
	// the callers whole while consecutive failures trip the breaker.
	down.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for cl.Stats().BreakerTrips == 0 {
		if _, err := cl.CallMethod(confEchoA, []byte("kill")); err != nil {
			t.Fatalf("call lost during kill (failover should absorb resets): %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; victim state %q", victimState())
		}
	}

	// Tripped: load keeps flowing (probes may fail; failover absorbs
	// them too).
	for i := 0; i < 100; i++ {
		start := time.Now()
		if _, err := cl.CallMethod(confEchoA, []byte("degraded")); err != nil {
			t.Fatalf("call %d failed with victim tripped: %v", i, err)
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("call %d took %v with victim tripped; tail did not recover", i, el)
		}
	}

	// Restart: the next successful probe readmits the victim.
	down.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for victimState() != "up" {
		if _, err := cl.CallMethod(confEchoA, []byte("heal")); err != nil {
			t.Fatalf("call lost during recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never readmitted; state %q, stats %+v", victimState(), cl.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := cl.Stats()
	if s.BreakerTrips == 0 || s.BreakerProbes == 0 || s.BreakerReadmits == 0 {
		t.Fatalf("breaker cycle incomplete: trips=%d probes=%d readmits=%d",
			s.BreakerTrips, s.BreakerProbes, s.BreakerReadmits)
	}
}

// TestChaosOverloadSoak drives the cluster tier well past its service
// capacity — a full-rate burst of a bimodal kv/scan mix, twice, with a
// straggler backend in the pool — and asserts the overload-control
// invariants: every issued op settles exactly once and every settlement
// is a recognized outcome (reply, shed, or deadline), shed replies are
// ErrShed so clients can retry, goodput holds a floor instead of
// collapsing to zero, and after the storm the runtimes drain to zero
// live segments with bufpool accounting bounded across seeds.
func TestChaosOverloadSoak(t *testing.T) {
	const (
		kvRoute   uint16 = 1
		scanRoute uint16 = 2
	)
	ops := 2 * chaosOps()
	var endOutstanding []int64
	for s := 0; s < chaosSeedCount(t); s++ {
		seed := int64(s + 1)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Two healthy backends and one straggler whose every request
			// costs an extra 2ms — the depth-aware balancer should route
			// around it, and budgets bound whatever still lands there.
			newBackend := func(straggle time.Duration) *Server {
				mux := NewMux()
				mux.HandleFunc(kvRoute, func(w ResponseWriter, req *Request) {
					if straggle > 0 {
						time.Sleep(straggle)
					}
					w.Reply(req.Payload)
				})
				mux.HandleFunc(scanRoute, func(w ResponseWriter, req *Request) {
					time.Sleep(200*time.Microsecond + straggle)
					w.Reply(nil)
				})
				mux.Route(kvRoute).SLO(5*time.Millisecond, 50*time.Microsecond)
				mux.Route(scanRoute).SLO(25*time.Millisecond, time.Millisecond).ShedPriority(1)
				b, err := NewServer(Config{Cores: 2, Handler: mux.Handler(), DepthFrames: true})
				if err != nil {
					t.Fatal(err)
				}
				b.Use(b.LatencyRecording(), b.RouteAwareAdmission(mux, 64), b.SLOEnforcement(mux))
				return b
			}
			backends := []*Server{newBackend(0), newBackend(0), newBackend(2 * time.Millisecond)}
			cl := NewCluster(ClusterConfig{
				Policy:          PolicyP2C,
				CallTimeout:     100 * time.Millisecond,
				MaxClusterDepth: 256,
			})
			for i, b := range backends {
				cl.Add(fmt.Sprintf("b%d", i), b.NewClient())
			}

			rng := rand.New(rand.NewSource(seed * 7919))
			var settles, doubles, okCount, shedCount, lateCount atomic.Int64
			var unexpected atomic.Value
			flags := make([]atomic.Bool, ops)
			settle := func(i int, err error) {
				if flags[i].Swap(true) {
					doubles.Add(1)
				}
				switch {
				case err == nil:
					okCount.Add(1)
				case errors.Is(err, ErrShed):
					shedCount.Add(1)
				case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, ErrCallTimeout):
					lateCount.Add(1)
				default:
					unexpected.Store(err)
				}
				settles.Add(1)
			}
			// Two full-rate bursts with a breather between them: the
			// first storm must shed rather than wedge, and the pause
			// must be enough for admission to readmit the second.
			for burst := 0; burst < 2; burst++ {
				for i := burst * ops / 2; i < (burst+1)*ops/2; i++ {
					i := i
					method, payload := kvRoute, []byte("kv")
					if rng.Intn(5) == 0 {
						method, payload = scanRoute, nil
					}
					err := cl.SendMethodBudgetAsync(method, payload, 50*time.Millisecond, func(_ []byte, err error) {
						settle(i, err)
					})
					if err != nil {
						// Synchronous refusal (front-tier admission):
						// settles at the call site, no callback coming.
						settle(i, err)
					}
				}
				time.Sleep(20 * time.Millisecond)
			}

			deadline := time.Now().Add(60 * time.Second)
			for settles.Load() < int64(ops) {
				if time.Now().After(deadline) {
					t.Fatalf("hang: %d/%d ops settled (ok=%d shed=%d late=%d)",
						settles.Load(), ops, okCount.Load(), shedCount.Load(), lateCount.Load())
				}
				time.Sleep(5 * time.Millisecond)
			}
			if d := doubles.Load(); d != 0 {
				t.Fatalf("%d ops settled more than once", d)
			}
			if err, _ := unexpected.Load().(error); err != nil {
				t.Fatalf("settlement outside the overload contract: %v", err)
			}
			if ok := okCount.Load(); ok < int64(ops)/4 {
				t.Fatalf("goodput collapsed: %d/%d ok (shed=%d late=%d)",
					ok, ops, shedCount.Load(), lateCount.Load())
			}
			if shedCount.Load() > 0 {
				var routeShed uint64
				for _, b := range backends {
					st := b.Stats()
					routeShed += st.Routes[kvRoute].Shed + st.Routes[scanRoute].Shed
				}
				if cl.Stats().Shed == 0 && routeShed == 0 {
					t.Fatal("ops shed but no shed counter moved anywhere")
				}
			}

			cl.Close()
			drain := time.Now().Add(10 * time.Second)
			for {
				var live int64
				for _, b := range backends {
					live += b.rt.SegmentsLive()
				}
				if live == 0 {
					break
				}
				if time.Now().After(drain) {
					t.Fatalf("leak after overload: SegmentsLive=%d", live)
				}
				time.Sleep(10 * time.Millisecond)
			}
			for _, b := range backends {
				b.Close()
			}
			endOutstanding = append(endOutstanding, bufpool.Outstanding())
		})
	}
	// Same cross-seed bound as the faulty-backend soak: the pool
	// high-water is set early; growth seed over seed is a leak.
	if !raceEnabled && len(endOutstanding) >= 3 {
		allow := endOutstanding[0]
		if endOutstanding[1] > allow {
			allow = endOutstanding[1]
		}
		allow += 64
		if last := endOutstanding[len(endOutstanding)-1]; last > allow {
			t.Fatalf("bufpool checkouts grew across seeds: %v (allowance %d)", endOutstanding, allow)
		}
	}
}

// TestChaosSlowSubscriberSoak aims the streaming tier's worst case at a
// fault-injected TCP server: a paced firehose topic, a live subscriber
// sharing its connection with a closed-loop echo caller, and a raw
// subscriber that acks its SUBSCRIBE and then never reads another byte.
// The invariants: every echo call settles within its budget and the P99
// stays bounded (the fair-queued egress keeps push bytes behind RPC
// replies), the stalled subscriber's damage is confined to its own ring
// (drops are counted, publishes never block), the push accounting
// reconciles once the firehose stops (delivered = pushed + dropped +
// at most the stalled ring's residue), and teardown drains segments and
// pool checkouts like every other soak.
func TestChaosSlowSubscriberSoak(t *testing.T) {
	const (
		echoRoute uint16 = 1
		fireTopic uint16 = 9
		stallQCap        = 16
	)
	ops := chaosOps()
	var endOutstanding []int64
	for s := 0; s < chaosSeedCount(t); s++ {
		seed := int64(s + 1)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			mux := NewMux()
			mux.HandleFunc(echoRoute, func(w ResponseWriter, req *Request) { w.Reply(req.Payload) })
			srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Close)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			fl := faultnet.WrapListener(l, faultnet.Plan{
				Seed:     seed,
				PPartial: 0.35,
				PDelay:   0.15,
			})
			go srv.Serve(fl)
			t.Cleanup(func() { l.Close() })
			addr := l.Addr().String()

			c, err := DialClient(addr, 2*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			var received atomic.Int64
			sub, err := c.Subscribe(fireTopic, FilterAll(), SubscribeOptions{Buffer: 512},
				func(_ uint32, _ []byte) { received.Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			stalled := rawSubscribe(t, addr, fireTopic, uint8(DropOldest), stallQCap)

			// Paced firehose: bursts with a breather so the publisher
			// saturates the stalled ring without monopolizing small
			// machines' CPUs (a busy loop would measure scheduler
			// starvation, not egress fairness). published sums Publish's
			// matched counts, which must equal the bus's Delivered.
			stop := make(chan struct{})
			fireDone := make(chan struct{})
			var published atomic.Int64
			go func() {
				defer close(fireDone)
				payload := make([]byte, 1024)
				var id uint32
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i := 0; i < 100; i++ {
						id++
						published.Add(int64(srv.Publish(fireTopic, id, payload)))
					}
					time.Sleep(time.Millisecond)
				}
			}()

			lat := make([]time.Duration, 0, ops)
			for i := 0; i < ops; i++ {
				start := time.Now()
				resp, cerr := c.CallMethodTimeout(echoRoute, []byte("soak"), 2*time.Second)
				el := time.Since(start)
				if cerr != nil {
					t.Fatalf("echo %d under firehose failed after %v: %v (faults %+v)",
						i, el, cerr, fl.FaultStats())
				}
				if string(resp) != "soak" {
					t.Fatalf("echo %d corrupted: %q", i, resp)
				}
				lat = append(lat, el)
			}
			close(stop)
			<-fireDone

			// Accounting reconciliation: once the firehose stops, the live
			// subscriber's ring drains fully (its peer reads), so the only
			// frames neither pushed nor dropped are the stalled ring's
			// residue — its flusher is parked on the egress backlog gate.
			waitUntilTrue(t, 30*time.Second, func() bool {
				st := srv.Stats().PubSub
				rem := int64(st.Delivered) - int64(st.Pushed) - int64(st.Dropped)
				return rem >= 0 && rem <= stallQCap
			}, "push accounting did not reconcile after the firehose stopped")
			st := srv.Stats().PubSub
			if st.Delivered != uint64(published.Load()) {
				t.Fatalf("bus delivered %d, publishers observed %d matches", st.Delivered, published.Load())
			}
			if st.Dropped == 0 {
				t.Fatalf("stalled subscriber (ring %d) produced no drops: %+v", stallQCap, st)
			}
			if received.Load() == 0 {
				t.Fatal("live subscriber received nothing")
			}

			if err := sub.Unsubscribe(); err != nil {
				t.Fatalf("unsubscribe: %v", err)
			}
			stalled.Close()
			c.Close()
			waitUntilTrue(t, 10*time.Second, func() bool {
				return srv.Stats().PubSub.Subscriptions == 0
			}, "subscriptions did not retire on close")
			if !srv.Flush(10 * time.Second) {
				t.Fatal("flush timed out")
			}
			drain := time.Now().Add(10 * time.Second)
			for {
				segs := srv.rt.SegmentsLive()
				pollers := int64(srv.tcp.NetStats().Pollers)
				if segs <= pollers {
					break
				}
				if time.Now().After(drain) {
					t.Fatalf("leak after subscriber soak: SegmentsLive=%d pollers=%d", segs, pollers)
				}
				time.Sleep(10 * time.Millisecond)
			}
			endOutstanding = append(endOutstanding, bufpool.Outstanding())

			// The latency bound comes last: under the race detector the
			// client parse path is ~10x slower and a single-CPU host
			// saturates, so the machinery above still runs but the bound
			// itself is only asserted uninstrumented.
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := lat[len(lat)*99/100]
			if limit := 250 * time.Millisecond; p99 > limit {
				if raceEnabled {
					t.Skipf("echo P99 %v over %v under race; bound asserted only uninstrumented", p99, limit)
				}
				t.Fatalf("echo P99 %v exceeded %v under firehose (drops=%d, faults %+v)",
					p99, limit, st.Dropped, fl.FaultStats())
			}
		})
	}
	if !raceEnabled && len(endOutstanding) >= 3 {
		allow := endOutstanding[0]
		if endOutstanding[1] > allow {
			allow = endOutstanding[1]
		}
		allow += 64
		if last := endOutstanding[len(endOutstanding)-1]; last > allow {
			t.Fatalf("bufpool checkouts grew across seeds: %v (allowance %d)", endOutstanding, allow)
		}
	}
}
