package zygos

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy retries calls rejected by server-side overload control.
// Only shed rejections (errors.Is(err, ErrShed)) are retried: they are
// the server explicitly saying "come back later" — every other error,
// including ErrDeadlineExceeded and transport failures, returns
// immediately, because retrying work the server already judged
// unaffordable or undeliverable just feeds the overload.
//
// Backoff honors the server's retry-after hint when the shed payload
// carries one ("retry-after-us=<n>; …"), falling back to jittered
// exponential backoff otherwise. The zero value is usable:
//
//	var rp zygos.RetryPolicy
//	resp, err := rp.Do(func() ([]byte, error) { return c.CallMethod(m, p) })
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first call included); <= 0 means
	// the default of 3.
	MaxAttempts int
	// BaseBackoff is the first fallback backoff when no retry-after
	// hint is present, doubling per attempt; <= 0 means 200µs.
	BaseBackoff time.Duration
	// MaxBackoff caps any single sleep, hinted or not; <= 0 means 20ms.
	MaxBackoff time.Duration
	// Rand, when set, supplies the backoff jitter — inject a seeded
	// source for reproducible tests. Guarded internally; nil uses the
	// global source.
	Rand *rand.Rand

	mu sync.Mutex // serializes Rand, which is not concurrency-safe
}

// Do runs call, retrying sheds per the policy. It returns the last
// reply and error; a shed that exhausts attempts surfaces as the
// original *StatusError (still errors.Is-matchable against ErrShed).
func (p *RetryPolicy) Do(call func() ([]byte, error)) ([]byte, error) {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = 200 * time.Microsecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 20 * time.Millisecond
	}
	var resp []byte
	var err error
	for i := 0; i < attempts; i++ {
		resp, err = call()
		if err == nil || !errors.Is(err, ErrShed) {
			return resp, err
		}
		if i == attempts-1 {
			break
		}
		d, hinted := RetryAfter(err)
		if !hinted || d <= 0 {
			d = base << i
		}
		if d > max {
			d = max
		}
		time.Sleep(p.jitter(d))
	}
	return resp, err
}

// jitter spreads a backoff uniformly over [d/2, d) so synchronized shed
// waves don't retry in lockstep and re-trigger the admission gate.
func (p *RetryPolicy) jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	var n int64
	if p.Rand != nil {
		p.mu.Lock()
		n = p.Rand.Int63n(int64(half))
		p.mu.Unlock()
	} else {
		n = rand.Int63n(int64(half))
	}
	return half + time.Duration(n)
}
