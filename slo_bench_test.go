// SLO overload benchmark: the bimodal kv+scan experiment behind
// BENCH_slo.json (make bench-slo). A closed loop of 64 in-flight
// requests — far past what the two-core server drains — offers an
// 80/20 mix of µs-scale kv lookups and synchronous 300µs scans, the
// head-of-line regime where a scan parked ahead of a kv request owns
// its latency. The "bare" case runs the server with no overload
// control: nothing is refused, every request queues, and the admitted
// tail is the queueing tail. The "slo" case stamps a 5ms budget on
// every request and runs route-aware admission plus SLO enforcement:
// excess load is shed at the door (scans first — they declared
// ShedPriority 1), expired work is dropped before dispatch, and the
// requests that are admitted see a short queue.
//
// ns/op is the mean settle time per offered request. The extra metrics
// are the gate: p50-ns/p99-ns are the ADMITTED (successful) request
// latencies — the paper's headline number, what an accepted request
// experiences under overload — and goodop-ns is inverse goodput
// (wall-clock ns per successful reply), so a shedding regression that
// throttles goodput fails the gate even if the admitted tail stays
// pretty. The committed trajectory must show slo beating bare on
// admitted P99.
package zygos

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkSLOOverload(b *testing.B) {
	// No "-" in sub-benchmark names: benchjson truncates the key at the
	// first dash (the GOMAXPROCS suffix).
	b.Run("bare", func(b *testing.B) { benchSLOOverload(b, false) })
	b.Run("slo", func(b *testing.B) { benchSLOOverload(b, true) })
}

func benchSLOOverload(b *testing.B, slo bool) {
	const (
		kvRoute   uint16 = 31
		scanRoute uint16 = 32
		window           = 64 // closed-loop in-flight ops: ~2× what the server drains
		budget           = 5 * time.Millisecond
		scanTime         = 300 * time.Microsecond
	)
	mux := NewMux()
	mux.HandleFunc(kvRoute, func(w ResponseWriter, req *Request) {
		w.Reply(req.Payload)
	})
	mux.HandleFunc(scanRoute, func(w ResponseWriter, req *Request) {
		time.Sleep(scanTime) // synchronous: pins the worker, like a real scan
		w.Reply(nil)
	})
	mux.Route(kvRoute).SLO(time.Millisecond, 10*time.Microsecond)
	mux.Route(scanRoute).SLO(budget, scanTime).ShedPriority(1)

	srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if slo {
		srv.Use(srv.LatencyRecording(), srv.RouteAwareAdmission(mux, 32), srv.SLOEnforcement(mux))
	}
	c := srv.NewClient()
	defer c.Close()

	payload := []byte("0123456789abcdef")
	var mu sync.Mutex
	var admitted []time.Duration
	var okCount, refused atomic.Int64
	var bareErr atomic.Pointer[error]
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	var wg sync.WaitGroup

	sendOne := func(i int, record bool) {
		<-tokens
		wg.Add(1)
		method := kvRoute
		pl := payload
		if i%5 == 0 {
			method, pl = scanRoute, nil
		}
		start := time.Now()
		settle := func(_ []byte, err error) {
			if err == nil {
				if record {
					el := time.Since(start)
					mu.Lock()
					admitted = append(admitted, el)
					mu.Unlock()
				}
				okCount.Add(1)
			} else if slo {
				refused.Add(1) // shed or expired: the control working as designed
			} else {
				bareErr.CompareAndSwap(nil, &err)
			}
			tokens <- struct{}{}
			wg.Done()
		}
		var serr error
		if slo {
			serr = c.SendMethodBudgetAsync(method, pl, budget, settle)
		} else {
			serr = c.SendMethodAsync(method, pl, settle)
		}
		if serr != nil {
			settle(nil, serr)
		}
	}

	// Warm: fill the pools and drive the queue to its overloaded
	// steady state before measuring.
	for i := 0; i < 4*window; i++ {
		sendOne(i, false)
	}
	wg.Wait()
	okCount.Store(0)
	refused.Store(0)

	b.ResetTimer()
	wallStart := time.Now()
	for i := 0; i < b.N; i++ {
		sendOne(i, true)
	}
	wg.Wait()
	wall := time.Since(wallStart)
	b.StopTimer()

	if ep := bareErr.Load(); ep != nil {
		b.Fatalf("unexpected error without overload control: %v", *ep)
	}
	ok := okCount.Load()
	if ok == 0 {
		b.Fatalf("no request admitted (refused=%d)", refused.Load())
	}
	sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
	pct := func(p int) float64 {
		idx := len(admitted) * p / 100
		if idx >= len(admitted) {
			idx = len(admitted) - 1
		}
		return float64(admitted[idx].Nanoseconds())
	}
	b.ReportMetric(pct(50), "p50-ns")
	b.ReportMetric(pct(99), "p99-ns")
	b.ReportMetric(float64(wall.Nanoseconds())/float64(ok), "goodop-ns")
	b.ReportMetric(float64(refused.Load())/float64(b.N), "shedfrac")
}
