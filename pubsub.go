package zygos

import (
	"encoding/json"
	"errors"
	"sync"
	"time"

	"zygos/internal/core"
	"zygos/internal/proto"
	"zygos/internal/pubsub"
)

// Streaming & pub-sub: servers push frames to subscribed clients over
// the same connection as RPC traffic, using the v4 frame pair —
// SUBSCRIBE/UNSUBSCRIBE requests from the client and server-initiated
// PUSH frames carrying a 32-bit subscription ID. Topics share the wire
// method ID space; a published frame carries a 32-bit frame identifier
// that subscription filters match on (exact, mask, range — the CAN
// acceptance-filter shapes — or an arbitrary predicate server-side).
//
// Ownership rules for pushed payloads: the payload slice handed to a
// PushHandler is a view into the transport's pooled parse buffer, valid
// only for the duration of the call — handlers that retain it must
// copy. Symmetrically, Publish copies the payload into each
// subscriber's pre-encoded PUSH frame before returning, so publishers
// may reuse their buffer immediately.
//
// Backpressure is per subscription: DropOldest (the default) evicts the
// oldest queued push when a subscriber falls behind — the publisher
// never blocks — while Disconnect reaps the lagging subscriber's
// connection. Push egress is fair-queued behind the RPC reply writer:
// a firehose topic cannot starve request/reply traffic sharing the
// connection.

// PushFrame is one published datum as seen by server-side predicate
// filters (FilterFunc).
type PushFrame = pubsub.Frame

// Filter selects which of a topic's frames a subscription receives.
// The zero value matches every frame.
type Filter = pubsub.Filter

// FilterAll matches every frame on the topic.
func FilterAll() Filter { return Filter{} }

// FilterExact matches frames whose ID equals id.
func FilterExact(id uint32) Filter { return pubsub.Exact(id) }

// FilterMask matches frames for which frame.ID & mask == id & mask —
// the classic CAN acceptance filter.
func FilterMask(id, mask uint32) Filter { return pubsub.Mask(id, mask) }

// FilterRange matches frames with lo <= ID <= hi, inclusive.
func FilterRange(lo, hi uint32) Filter { return pubsub.Range(lo, hi) }

// FilterFunc matches frames accepted by fn. Predicates cannot travel on
// the wire: a FilterFunc subscription works against a Server's bus
// in-process (Server.SubscribeLocal, RelayTopic destinations) but is
// rejected by client-side Subscribe.
func FilterFunc(fn func(PushFrame) bool) Filter { return pubsub.Func(fn) }

// PushPolicy is a subscription's backpressure policy: what happens when
// its push queue is full.
type PushPolicy uint8

const (
	// DropOldest evicts the oldest queued push to admit the new one,
	// counting the drop in Stats().PubSub.Dropped. The publisher never
	// blocks. This is the default.
	DropOldest PushPolicy = PushPolicy(pubsub.PolicyDropOldest)
	// Disconnect reaps the subscriber's connection when its queue
	// overflows: a consumer that cannot keep up is cut off rather than
	// silently lossy.
	Disconnect PushPolicy = PushPolicy(pubsub.PolicyDisconnect)
)

// SubscribeOptions tune a subscription.
type SubscribeOptions struct {
	// Policy is the backpressure policy; the zero value is DropOldest.
	Policy PushPolicy
	// Buffer is the subscription's push-queue capacity in frames; 0
	// selects the server default (256), values above 32768 are clamped.
	Buffer int
}

// PushHandler receives one pushed frame: the published frame's 32-bit
// identifier and its payload. It runs on the client transport's reply
// delivery path and must not block; the payload slice is valid only for
// the duration of the call.
type PushHandler func(frameID uint32, payload []byte)

// Subscription is a live client-side subscription handle.
type Subscription struct {
	topic uint16
	id    uint32

	once  sync.Once
	unsub func() error
}

// Topic returns the subscribed topic (wire method ID).
func (s *Subscription) Topic() uint16 { return s.topic }

// ID returns the client-chosen subscription ID that demultiplexes this
// subscription's PUSH frames on the shared connection.
func (s *Subscription) ID() uint32 { return s.id }

// Unsubscribe retires the subscription: the handler is removed
// immediately and the server acks the UNSUBSCRIBE. Idempotent; only the
// first call performs the round trip.
func (s *Subscription) Unsubscribe() error {
	var err error
	s.once.Do(func() { err = s.unsub() })
	return err
}

// Subscriber is the client-side capability of subscribing to server
// push topics. Client, TCPClient, and ManagedClient implement it.
// ManagedClient subscriptions are per physical socket and do not
// survive a redial; re-subscribe after transport errors.
type Subscriber interface {
	Subscribe(topic uint16, f Filter, opts SubscribeOptions, h PushHandler) (*Subscription, error)
}

var (
	_ Subscriber = (*Client)(nil)
	_ Subscriber = (*TCPClient)(nil)
	_ Subscriber = (*ManagedClient)(nil)
)

// Publisher is the server-side capability of publishing frames into a
// fan-out bus. *Server implements it; application layers (kv
// invalidation, CDC feeds) program against the interface so tests can
// substitute a recorder.
type Publisher interface {
	// Publish fans one frame out to the topic's matching subscriptions
	// and returns how many received it. The payload is copied per
	// subscriber before Publish returns; it never blocks on slow
	// consumers.
	Publish(topic uint16, frameID uint32, payload []byte) int
}

var _ Publisher = (*Server)(nil)

// encodeSubSpec builds the wire SUBSCRIBE payload from the public
// options. FilterFunc is rejected here — predicates don't serialize.
func encodeSubSpec(f Filter, opts SubscribeOptions) ([]byte, error) {
	qcap := opts.Buffer
	if qcap < 0 {
		qcap = 0
	}
	if qcap > int(^uint16(0)) {
		qcap = int(^uint16(0))
	}
	return pubsub.AppendSubSpec(nil, pubsub.SubSpec{
		Policy: uint8(opts.Policy),
		QCap:   uint16(qcap),
		Filter: f,
	})
}

// Subscribe registers h for pushes on topic matching f, over the
// in-process transport. See Subscriber.
func (c *Client) Subscribe(topic uint16, f Filter, opts SubscribeOptions, h PushHandler) (*Subscription, error) {
	spec, err := encodeSubSpec(f, opts)
	if err != nil {
		return nil, err
	}
	id, err := c.cc.Subscribe(topic, spec, h)
	if err != nil {
		return nil, err
	}
	return &Subscription{topic: topic, id: id, unsub: func() error { return c.cc.Unsubscribe(topic, id) }}, nil
}

// Subscribe registers h for pushes on topic matching f, over TCP. See
// Subscriber.
func (c *TCPClient) Subscribe(topic uint16, f Filter, opts SubscribeOptions, h PushHandler) (*Subscription, error) {
	spec, err := encodeSubSpec(f, opts)
	if err != nil {
		return nil, err
	}
	id, err := c.tc.Subscribe(topic, spec, h)
	if err != nil {
		return nil, err
	}
	return &Subscription{topic: topic, id: id, unsub: func() error { return c.tc.Unsubscribe(topic, id) }}, nil
}

// Subscribe registers h for pushes on topic matching f, over the
// caller's ConnManager socket. PUSH frames demultiplex by subscription
// ID alongside reply IDs on the shared socket. Subscriptions do not
// survive a redial. See Subscriber.
func (c *ManagedClient) Subscribe(topic uint16, f Filter, opts SubscribeOptions, h PushHandler) (*Subscription, error) {
	spec, err := encodeSubSpec(f, opts)
	if err != nil {
		return nil, err
	}
	id, err := c.mc.Subscribe(topic, spec, h)
	if err != nil {
		return nil, err
	}
	return &Subscription{topic: topic, id: id, unsub: func() error { return c.mc.Unsubscribe(topic, id) }}, nil
}

// connSub ties one wire subscription to its bus registration, so a
// closing connection (or an UNSUBSCRIBE) unhooks the right fan-out
// entry.
type connSub struct {
	id  uint32
	sub *pubsub.Sub
}

// handleV4 serves the v4 control frames the core handler glue
// intercepts before request dispatch: SUBSCRIBE installs the
// per-connection push queue and hooks it into the fan-out bus,
// UNSUBSCRIBE tears both down. Acks ride the connection's TX sequencer
// like any reply, so they are ordered with the RPC traffic around them.
func (s *Server) handleV4(ctx *core.Ctx, c *core.Conn, m proto.Message) {
	switch m.Kind {
	case proto.KindSubscribe:
		spec, err := pubsub.DecodeSubSpec(m.Payload)
		if err != nil {
			_ = ctx.Error(StatusAppError, err.Error())
			return
		}
		ps := c.Subscribe(m.SubID, m.Method, spec.Policy, int(spec.QCap))
		if ps == nil {
			_ = ctx.Error(StatusAppError, "zygos: duplicate or closed subscription")
			return
		}
		sub := s.bus.Subscribe(m.Method, spec.Filter, func(fr pubsub.Frame) {
			ps.Push(fr.ID, fr.Payload)
		})
		connID := c.ID()
		s.subMu.Lock()
		s.connSubs[connID] = append(s.connSubs[connID], connSub{id: m.SubID, sub: sub})
		s.subMu.Unlock()
		if c.Closed() {
			// The connection died while we were hooking up: the core-side
			// teardown may have run before the bus entry existed, so
			// unhook it again ourselves.
			s.dropConnSubs(connID)
		}
		_ = ctx.Reply(nil)
	case proto.KindUnsubscribe:
		c.Unsubscribe(m.SubID)
		connID := c.ID()
		s.subMu.Lock()
		subs := s.connSubs[connID]
		for i, cs := range subs {
			if cs.id == m.SubID {
				subs[i] = subs[len(subs)-1]
				s.connSubs[connID] = subs[:len(subs)-1]
				s.subMu.Unlock()
				cs.sub.Unsubscribe()
				_ = ctx.Reply(nil)
				return
			}
		}
		s.subMu.Unlock()
		_ = ctx.Error(StatusAppError, "zygos: unknown subscription")
	default:
		// KindPush is server-to-client only; anything else is hostile.
		_ = ctx.Error(StatusAppError, "zygos: unexpected v4 frame kind")
	}
}

// dropConnSubs unhooks every bus subscription a closed connection held;
// wired into the runtime's OnConnClosed.
func (s *Server) dropConnSubs(connID uint64) {
	s.subMu.Lock()
	subs := s.connSubs[connID]
	delete(s.connSubs, connID)
	s.subMu.Unlock()
	for _, cs := range subs {
		cs.sub.Unsubscribe()
	}
}

// Publish fans one frame out to topic's matching subscriptions and
// returns how many received it. Each matching subscriber's copy is
// encoded into its bounded push queue — Publish never blocks on slow
// consumers (see PushPolicy).
func (s *Server) Publish(topic uint16, frameID uint32, payload []byte) int {
	return s.bus.Publish(pubsub.Frame{Topic: topic, ID: frameID, Payload: payload})
}

// SubscribeLocal registers an in-process deliver function on the
// server's bus — no wire subscription, no push queue, any filter kind
// including FilterFunc. deliver runs synchronously inside Publish and
// must not block; the frame payload is valid only for the duration of
// the call. Unsubscribe via the returned handle's Unsubscribe.
func (s *Server) SubscribeLocal(topic uint16, f Filter, deliver func(PushFrame)) *pubsub.Sub {
	return s.bus.Subscribe(topic, f, deliver)
}

// RelayTopic forwards topic's pushes from an upstream server (reached
// through src — typically a caller to a backend) into dst's own bus, so
// dst's subscribers receive frames published behind a proxy hop: the
// proxy subscribes upstream once and republishes locally. Unsubscribe
// the returned handle to stop the relay.
func RelayTopic(dst *Server, src Subscriber, topic uint16, f Filter, opts SubscribeOptions) (*Subscription, error) {
	return src.Subscribe(topic, f, opts, func(frameID uint32, payload []byte) {
		dst.Publish(topic, frameID, payload)
	})
}

// TopicStats is the reserved topic StreamStats publishes on. Like
// MethodHealth it lives at the top of the method space and should not
// be used as an application route.
const TopicStats uint16 = 0xFFFE

// ErrAlreadyStreaming is returned by StreamStats when a stats stream is
// already running.
var ErrAlreadyStreaming = errors.New("zygos: stats stream already running")

// StreamStats periodically publishes the server's Stats() snapshot,
// JSON-encoded, on TopicStats — live stats streaming for dashboards
// (zygos-bench -live -watch consumes it) instead of polling RPCs. The
// frame ID is a sequence number. Snapshots are only built while the
// topic has subscribers. Returns a stop function (idempotent); only one
// stream may run per server.
func (s *Server) StreamStats(every time.Duration) (func(), error) {
	if every <= 0 {
		every = time.Second
	}
	if !s.statsStreaming.CompareAndSwap(false, true) {
		return nil, ErrAlreadyStreaming
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		var seq uint32
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if s.bus.Subscribers(TopicStats) == 0 {
					continue
				}
				b, err := json.Marshal(s.Stats())
				if err != nil {
					continue
				}
				seq++
				s.Publish(TopicStats, seq, b)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			s.statsStreaming.Store(false)
		})
	}, nil
}

// PubSubStats is the pub-sub slice of Stats.
type PubSubStats struct {
	// Published counts Publish calls on the server's bus.
	Published uint64
	// Delivered counts fan-out deliveries into subscription queues
	// (one frame matched by k subscriptions counts k).
	Delivered uint64
	// Pushed counts PUSH frames actually handed to transport writers.
	Pushed uint64
	// Dropped counts PUSH frames evicted by drop-oldest backpressure,
	// refused at disconnect, or oversized.
	Dropped uint64
	// Subscriptions is the current live wire-subscription count.
	Subscriptions int
}
