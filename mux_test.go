package zygos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// newMuxServer mounts mux on a fresh 2-core server.
func newMuxServer(t *testing.T, mux *Mux) *Server {
	t.Helper()
	srv, err := NewServer(Config{Cores: 2, Handler: mux.Handler()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// Server-wide middleware wraps every route; route middleware wraps only
// its own method, inside the server chain, in installation order.
func TestMuxMiddlewareComposition(t *testing.T) {
	var mu sync.Mutex
	var trace []string
	mw := func(name string) Middleware {
		return func(next Handler) Handler {
			return func(w ResponseWriter, req *Request) {
				mu.Lock()
				trace = append(trace, name)
				mu.Unlock()
				next(w, req)
			}
		}
	}
	mux := NewMux()
	echo := func(w ResponseWriter, req *Request) { w.Reply(req.Payload) }
	// Route middleware installed before the handler via Route, and after
	// via the Handle chain — both must compose.
	mux.Route(7).Use(mw("route7-a"))
	mux.Handle(7, echo).Use(mw("route7-b"))
	mux.HandleFunc(8, echo)

	srv := newMuxServer(t, mux)
	srv.Use(mw("server"))
	c := srv.NewClient()
	defer c.Close()

	if _, err := c.CallMethod(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]string(nil), trace...)
	trace = trace[:0]
	mu.Unlock()
	want := []string{"server", "route7-a", "route7-b"}
	if len(got) != len(want) {
		t.Fatalf("trace %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace %v, want %v", got, want)
		}
	}

	// Method 8 has no route middleware: only the server chain runs.
	if _, err := c.CallMethod(8, []byte("x")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got = append([]string(nil), trace...)
	mu.Unlock()
	if len(got) != 1 || got[0] != "server" {
		t.Fatalf("method 8 trace %v, want [server]", got)
	}
}

// The default NotFound replies StatusNoMethod; NotFound replaces it.
func TestMuxNotFound(t *testing.T) {
	mux := NewMux()
	mux.HandleFunc(1, func(w ResponseWriter, req *Request) { w.Reply([]byte("one")) })
	srv := newMuxServer(t, mux)
	c := srv.NewClient()
	defer c.Close()

	_, err := c.CallMethod(2, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != StatusNoMethod {
		t.Fatalf("default NotFound: got %v, want StatusNoMethod", err)
	}

	mux.NotFound(func(w ResponseWriter, req *Request) { w.Reply([]byte("fallback")) })
	resp, err := c.CallMethod(2, nil)
	if err != nil || string(resp) != "fallback" {
		t.Fatalf("custom NotFound: %q %v", resp, err)
	}
}

// Handle replaces a route's handler in place; Methods lists registered
// routes only.
func TestMuxReRegisterAndMethods(t *testing.T) {
	mux := NewMux()
	mux.HandleFunc(5, func(w ResponseWriter, req *Request) { w.Reply([]byte("old")) })
	mux.Route(9) // middleware slot, no handler: must not list
	srv := newMuxServer(t, mux)
	c := srv.NewClient()
	defer c.Close()

	if resp, _ := c.CallMethod(5, nil); string(resp) != "old" {
		t.Fatalf("got %q", resp)
	}
	mux.HandleFunc(5, func(w ResponseWriter, req *Request) { w.Reply([]byte("new")) })
	if resp, _ := c.CallMethod(5, nil); string(resp) != "new" {
		t.Fatalf("got %q after re-register", resp)
	}
	ms := mux.Methods()
	if len(ms) != 1 || ms[0] != 5 {
		t.Fatalf("Methods() = %v, want [5]", ms)
	}
	// A routeless method still falls through to NotFound.
	var se *StatusError
	if _, err := c.CallMethod(9, nil); !errors.As(err, &se) || se.Code != StatusNoMethod {
		t.Fatalf("handlerless route: got %v, want StatusNoMethod", err)
	}
}

// Acceptance: Stats().Routes reports per-method Count/P50/P99 once
// LatencyRecording is installed, including the method-0 legacy slice.
func TestRouteStatsUnderLatencyRecording(t *testing.T) {
	mux := NewMux()
	fast := func(w ResponseWriter, req *Request) { w.Reply(req.Payload) }
	slow := func(w ResponseWriter, req *Request) {
		deadline := time.Now().Add(200 * time.Microsecond)
		for time.Now().Before(deadline) {
		}
		w.Reply(req.Payload)
	}
	mux.HandleFunc(0, fast)
	mux.HandleFunc(1, fast)
	mux.HandleFunc(2, slow)
	srv := newMuxServer(t, mux)
	srv.Use(srv.LatencyRecording())
	c := srv.NewClient()
	defer c.Close()

	for i := 0; i < 20; i++ {
		if _, err := c.CallMethod(1, []byte("f")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := c.CallMethod(2, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call([]byte("legacy")); err != nil {
		t.Fatal(err)
	}

	routes := srv.Stats().Routes
	if routes == nil {
		t.Fatal("Stats().Routes nil under LatencyRecording")
	}
	r1, r2, r0 := routes[1], routes[2], routes[0]
	if r1.Count != 20 || r1.Latency.Count != 20 {
		t.Fatalf("route 1: %+v, want count 20", r1)
	}
	if r2.Count != 10 || r2.Latency.Count != 10 {
		t.Fatalf("route 2: %+v, want count 10", r2)
	}
	if r0.Count != 1 {
		t.Fatalf("route 0 (legacy): %+v, want count 1", r0)
	}
	if r1.Latency.P50 <= 0 || r1.Latency.P99 <= 0 || r2.Latency.P50 <= 0 {
		t.Fatalf("percentiles missing: r1=%v r2=%v", r1.Latency, r2.Latency)
	}
	// The slow route's spin must dominate its P50; the routes must not
	// share one histogram.
	if r2.Latency.P50 < 150*time.Microsecond {
		t.Fatalf("slow route P50 %v, want >= 150µs", r2.Latency.P50)
	}
	if r1.Latency.P50 >= r2.Latency.P50 {
		t.Fatalf("fast route P50 %v not below slow route P50 %v", r1.Latency.P50, r2.Latency.P50)
	}

	// Without LatencyRecording no routes are reported.
	bare := newMuxServer(t, NewMux())
	if bare.Stats().Routes != nil {
		t.Fatal("Routes populated without LatencyRecording")
	}
}
