GO ?= go

# The bench targets pipe `go test` into benchjson; pipefail makes the
# recipe fail on a failed benchmark run instead of recording partial
# results as success.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test vet bench bench-smoke

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: the whole tree must vet and test clean.
test: vet
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Hot-path benchmark trajectory: run the BenchmarkHotPath* suite and
# update the "current" section of BENCH_hotpath.json (the committed
# "baseline" section is preserved for comparison).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count 1 . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -label current

# One iteration of every benchmark, as a compile-and-run smoke check,
# plus a 1x hot-path pass recorded in the "smoke" section of
# BENCH_hotpath.json (uploaded as a CI artifact).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -label smoke -note "1x smoke pass, not a performance measurement"
