GO ?= go

# The bench targets pipe `go test` into benchjson; pipefail makes the
# recipe fail on a failed benchmark run instead of recording partial
# results as success.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build test vet chaos-soak bench bench-sched bench-conn bench-cluster bench-cluster-gate bench-slo bench-slo-gate bench-pubsub bench-pubsub-gate bench-smoke bench-gate

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: the whole tree must vet and test clean.
test: vet
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Long chaos soak: the seeded fault-injection scenarios (TestChaos* in
# the root package) under the race detector with a wide seed matrix.
# Each seed replays deterministically, so a failure here reports the
# seed to rerun with CHAOS_SEEDS/CHAOS_OPS. CI runs a 2-seed smoke of
# the same tests; this target is the pre-release/nightly deep run.
CHAOS_SEEDS ?= 16
CHAOS_OPS ?= 400
chaos-soak:
	CHAOS_SEEDS=$(CHAOS_SEEDS) CHAOS_OPS=$(CHAOS_OPS) $(GO) test -race -run 'TestChaos' -count=1 -timeout 30m -v .

# Hot-path benchmark trajectory: run the BenchmarkHotPath* suite —
# including BenchmarkHotPathRoutedKV, the method-dispatched GET/SET mix
# over memnet — and update the "current" section of BENCH_hotpath.json
# (the committed "baseline" section is preserved for comparison), then
# do the same for the scheduler-scaling suite in BENCH_sched.json.
bench: bench-sched bench-conn bench-cluster bench-slo bench-pubsub
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count 1 . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -label current

# Scheduler-scaling trajectory: BenchmarkSchedScale{1,2,4,8} plus the
# wake-latency probe, recorded to BENCH_sched.json.
bench-sched:
	$(GO) test -run '^$$' -bench 'BenchmarkSched' -benchmem -count 1 . | $(GO) run ./scripts/benchjson -out BENCH_sched.json -label current

# Connection-scale trajectory: BenchmarkConnScale{1k,100k} measure
# hot-path ns/op with an idle-connection wall resident, plus bytes/conn
# and goroutines as extra metrics, recorded to BENCH_conn.json. The
# iteration count is pinned so the harness doesn't re-dial the wall on
# every calibration ramp step (setup dwarfs the measured loop).
bench-conn:
	$(GO) test -run '^$$' -bench 'BenchmarkConnScale' -benchtime 2000x -benchmem -count 1 -timeout 30m . | $(GO) run ./scripts/benchjson -out BENCH_conn.json -label current

# Cluster-tier tail trajectory: BenchmarkClusterFanout measures fan-out
# latency (P50/P99 as extra metrics) across K in {1,8,16} for
# round-robin, P2C, and P2C+hedging over four backends with one
# deliberate straggler, recorded to BENCH_cluster.json. The iteration
# count is pinned so every section's P99 is computed over the same
# sample size instead of whatever the calibration ramp landed on.
bench-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkClusterFanout' -benchtime 300x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_cluster.json -label current

# Cluster-tier regression gate: re-measure the fan-out suite and fail
# if the mean or any latency-shaped extra metric (p50-ns, p99-ns)
# regressed beyond GATE_PCT against the committed reference — a tail
# regression fails even when the mean stays flat.
bench-cluster-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkClusterFanout' -benchtime 300x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_cluster.json -gate $(GATE_PCT)

# SLO overload trajectory: BenchmarkSLOOverload drives a bimodal
# kv+scan mix at ~2× capacity with and without overload control and
# records the admitted-request latency percentiles (p50-ns, p99-ns)
# plus inverse goodput (goodop-ns) to BENCH_slo.json. The iteration
# count is pinned so the percentiles come from a fixed sample size and
# the closed-loop queue reaches the same steady state every run.
bench-slo:
	$(GO) test -run '^$$' -bench 'BenchmarkSLOOverload' -benchtime 2000x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_slo.json -label current

# SLO overload regression gate: re-measure and fail if the admitted
# P99 or the per-good-op cost regressed beyond GATE_PCT against the
# committed reference — shedding that stops protecting the admitted
# tail, or sheds so hard goodput collapses, both fail.
bench-slo-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkSLOOverload' -benchtime 2000x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_slo.json -gate $(GATE_PCT)

# Pub-sub fan-out trajectory: BenchmarkPubSubFanout measures the
# filtered bus + fair-queued push egress over a subscribers × burst
# grid — per-frame publish cost (push-ns), drop-oldest eviction
# fraction (dropfrac, recorded not gated), and the co-resident echo
# caller's tail (p99-ns) while the firehose runs — recorded to
# BENCH_pubsub.json. The iteration count is pinned so every cell's
# P99 comes from the same sample size.
bench-pubsub:
	$(GO) test -run '^$$' -bench 'BenchmarkPubSubFanout' -benchtime 2000x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_pubsub.json -label current

# Pub-sub regression gate: re-measure the fan-out grid and fail if the
# publish cost or the co-resident P99 regressed beyond GATE_PCT
# against the committed reference — a fair-queuing break shows up as
# p99-ns inflation long before ns/op moves.
bench-pubsub-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkPubSubFanout' -benchtime 2000x -benchmem -count 1 -timeout 20m . | $(GO) run ./scripts/benchjson -out BENCH_pubsub.json -gate $(GATE_PCT)

# One iteration of every benchmark as a compile-and-run smoke check,
# then 1x hot-path+sched passes at GOMAXPROCS=1 and GOMAXPROCS=4
# recorded as separate sections, so a scaling regression is visible in
# the CI artifact even when the single-core column looks healthy. The
# BenchmarkHotPath pattern includes BenchmarkHotPathRoutedKV, so the
# method-routed serving path is smoked alongside the echo shapes.
# -short keeps the ConnScale smoke at the 1k wall (the 100k wall dials
# six figures of sockets — a measurement run, not a smoke check).
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...
	GOMAXPROCS=1 $(GO) test -run '^$$' -bench 'BenchmarkHotPath|BenchmarkSched' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -label smoke-p1 -note "1x smoke pass at GOMAXPROCS=1, not a performance measurement"
	GOMAXPROCS=4 $(GO) test -run '^$$' -bench 'BenchmarkHotPath|BenchmarkSched' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -label smoke-p4 -note "1x smoke pass at GOMAXPROCS=4, not a performance measurement"

# Regression gate: re-measure the hot-path suite and fail if any
# benchmark's ns/op regressed more than the threshold against the
# committed reference section ("current", falling back to "baseline").
# The default threshold is generous because CI machines differ from the
# machine that recorded the reference; tune GATE_PCT down for a quiet
# local box.
GATE_PCT ?= 150
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count 1 . | $(GO) run ./scripts/benchjson -out BENCH_hotpath.json -gate $(GATE_PCT)
