GO ?= go

.PHONY: all build test vet bench-smoke

all: build test

build:
	$(GO) build ./...

# Tier-1 verification: the whole tree must vet and test clean.
test: vet
	$(GO) test ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark, as a compile-and-run smoke check.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
