// Command zygos-bench regenerates the tables and figures of the ZygOS
// paper's evaluation from this repository's simulators and applications.
//
// Usage:
//
//	zygos-bench [-experiment all|fig2|fig3|fig6|fig7|fig8|fig9|fig10a|fig10b|table1|fig11] [-full] [-seed N]
//	zygos-bench -live [-requests N] [-cores N] [-method M]
//
// The default quick mode finishes in minutes; -full (or ZYGOS_FULL=1)
// selects the dense grids used for EXPERIMENTS.md. -live skips the
// simulators and measures the real runtime instead: one Caller-generic
// echo measurement driven over both the in-process and the TCP loopback
// transport.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"zygos"
	"zygos/internal/experiments"
	"zygos/internal/stats"
)

// gcDelta captures GC and allocation activity across a measured region,
// so live runs expose allocation regressions in the hot path directly in
// their stats line.
type gcDelta struct {
	start runtime.MemStats
}

func startGCDelta() *gcDelta {
	g := &gcDelta{}
	runtime.ReadMemStats(&g.start)
	return g
}

// line renders "gc=N pause=D allocs/op=F" for ops operations since start.
func (g *gcDelta) line(ops int) string {
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	numGC := end.NumGC - g.start.NumGC
	pause := time.Duration(end.PauseTotalNs - g.start.PauseTotalNs)
	allocs := float64(end.Mallocs - g.start.Mallocs)
	perOp := 0.0
	if ops > 0 {
		perOp = allocs / float64(ops)
	}
	return fmt.Sprintf("gc=%d pause=%v allocs/op=%.1f", numGC, pause.Round(time.Microsecond), perOp)
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		full       = flag.Bool("full", os.Getenv("ZYGOS_FULL") == "1", "dense grids and large samples")
		seed       = flag.Int64("seed", 1, "simulation seed")
		live       = flag.Bool("live", false, "measure the real runtime instead of the simulators")
		requests   = flag.Int("requests", 50000, "live: requests per transport")
		cores      = flag.Int("cores", 0, "live: worker cores (0 = GOMAXPROCS)")
		method     = flag.Uint("method", 0, "live: route the echo through this wire method ID via a Mux (0 = bare handler, legacy frames)")
		targets    = flag.String("targets", "", "live: comma-separated remote server addresses measured through one round-robin caller (skips the local server)")
		watch      = flag.Bool("watch", false, "live: subscribe to the server's stats stream and print each sample while the run goes")
	)
	flag.Parse()

	if *live {
		if err := runLive(*requests, *cores, uint16(*method), *targets, *watch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opt := experiments.Options{Full: *full, Seed: *seed}
	run := func(id string, gen experiments.Generator) {
		start := time.Now()
		res := gen(opt)
		res.Render(os.Stdout)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range experiments.Registry {
			run(e.ID, e.Gen)
		}
		return
	}
	gen, ok := experiments.ByID(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:", *experiment)
		for _, e := range experiments.Registry {
			fmt.Fprintf(os.Stderr, " %s", e.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	run(*experiment, gen)
}

// runLive measures closed-loop echo latency of the real runtime. The
// measurement function takes a zygos.Caller, so the same code path
// drives the in-process transport and the TCP loopback transport; only
// the dial differs. With method != 0 the echo handler is mounted on a
// Mux under that wire method and calls travel as v3 frames —
// exercising the routed dispatch path end to end. With watch, the
// server streams its Stats() over a v4 push subscription and each
// sample prints as it arrives — the same live telemetry a dashboard
// would consume, riding the connection under test.
func runLive(requests, cores int, method uint16, targets string, watch bool) error {
	if targets != "" {
		if watch {
			return fmt.Errorf("-watch requires the local -live server (stats streaming is enabled server-side)")
		}
		return runLiveTargets(requests, method, targets)
	}
	echo := func(w zygos.ResponseWriter, req *zygos.Request) { w.Reply(req.Payload) }
	handler := zygos.Handler(echo)
	if method != 0 {
		mux := zygos.NewMux()
		mux.HandleFunc(method, echo)
		handler = mux.Handler()
	}
	srv, err := zygos.NewServer(zygos.Config{
		Cores:   cores,
		Handler: handler,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Use(srv.LatencyRecording())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(l)

	if watch {
		stop, err := srv.StreamStats(250 * time.Millisecond)
		if err != nil {
			return err
		}
		defer stop()
		wc, err := zygos.DialClient(l.Addr().String(), 5*time.Second)
		if err != nil {
			return err
		}
		defer wc.Close()
		sub, err := wc.Subscribe(zygos.TopicStats, zygos.FilterAll(), zygos.SubscribeOptions{},
			func(seq uint32, payload []byte) {
				var st zygos.Stats
				if json.Unmarshal(payload, &st) != nil {
					return
				}
				fmt.Printf("watch #%d: events=%d steals=%d parks=%d pushed=%d dropped=%d subs=%d\n",
					seq, st.Events, st.Steals, st.Parks,
					st.PubSub.Pushed, st.PubSub.Dropped, st.PubSub.Subscriptions)
			})
		if err != nil {
			return err
		}
		defer sub.Unsubscribe()
	}

	measure := func(name string, dial func() (zygos.Caller, error)) error {
		c, err := dial()
		if err != nil {
			return err
		}
		defer c.Close()
		sample := stats.NewSample(requests)
		payload := []byte("0123456789abcdef")
		var buf []byte
		gc := startGCDelta()
		start := time.Now()
		for i := 0; i < requests; i++ {
			t0 := time.Now()
			var r []byte
			var err error
			if method != 0 {
				r, err = c.CallMethodInto(method, payload, buf[:0])
			} else {
				r, err = c.CallInto(payload, buf[:0])
			}
			if err != nil {
				return fmt.Errorf("%s call %d: %w", name, i, err)
			}
			buf = r
			sample.Add(time.Since(t0).Nanoseconds())
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s %8.0f req/s  %s  %s\n", name,
			float64(requests)/elapsed.Seconds(), sample.Summarize(), gc.line(requests))
		return nil
	}

	if err := measure("inproc", func() (zygos.Caller, error) { return srv.NewClient(), nil }); err != nil {
		return err
	}
	if err := measure("tcp", func() (zygos.Caller, error) {
		return zygos.DialClient(l.Addr().String(), 5*time.Second)
	}); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("server: events=%d steals=%d (%.1f%%) proxies=%d (%.1f%%) parks=%d wakes=%d  latency %v\n",
		st.Events, st.Steals, st.StealFraction()*100, st.Proxies, st.ProxyFraction()*100,
		st.Parks, st.Wakes, st.Latency)
	return nil
}

// runLiveTargets measures closed-loop echo latency against remote
// servers, calls round-robined across them — the load-blind baseline a
// zygos-proxy front (point -targets at it alone) is judged against.
func runLiveTargets(requests int, method uint16, targets string) error {
	var callers []zygos.Caller
	for _, a := range strings.Split(targets, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		c, err := zygos.DialClient(a, 5*time.Second)
		if err != nil {
			return fmt.Errorf("dial %s: %w", a, err)
		}
		callers = append(callers, c)
	}
	if len(callers) == 0 {
		return fmt.Errorf("-targets: no addresses")
	}
	rr := &rrCaller{cs: callers}
	defer rr.Close()
	sample := stats.NewSample(requests)
	payload := []byte("0123456789abcdef")
	var buf []byte
	gc := startGCDelta()
	start := time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		var r []byte
		var err error
		if method != 0 {
			r, err = rr.CallMethodInto(method, payload, buf[:0])
		} else {
			r, err = rr.CallInto(payload, buf[:0])
		}
		if err != nil {
			return fmt.Errorf("call %d: %w", i, err)
		}
		buf = r
		sample.Add(time.Since(t0).Nanoseconds())
	}
	elapsed := time.Since(start)
	fmt.Printf("%-8s %8.0f req/s  %s  %s\n", "targets",
		float64(requests)/elapsed.Seconds(), sample.Summarize(), gc.line(requests))
	return nil
}

// rrCaller rotates calls across a fixed set of callers — static
// round-robin with no view of backend load.
type rrCaller struct {
	cs []zygos.Caller
	n  atomic.Uint64
}

func (r *rrCaller) next() zygos.Caller { return r.cs[r.n.Add(1)%uint64(len(r.cs))] }

func (r *rrCaller) Call(p []byte) ([]byte, error)          { return r.next().Call(p) }
func (r *rrCaller) CallInto(p, buf []byte) ([]byte, error) { return r.next().CallInto(p, buf) }
func (r *rrCaller) CallMethod(m uint16, p []byte) ([]byte, error) {
	return r.next().CallMethod(m, p)
}
func (r *rrCaller) CallMethodInto(m uint16, p, buf []byte) ([]byte, error) {
	return r.next().CallMethodInto(m, p, buf)
}
func (r *rrCaller) SendAsync(p []byte, cb func([]byte, error)) error {
	return r.next().SendAsync(p, cb)
}
func (r *rrCaller) SendMethodAsync(m uint16, p []byte, cb func([]byte, error)) error {
	return r.next().SendMethodAsync(m, p, cb)
}
func (r *rrCaller) SendOneWay(p []byte) error                 { return r.next().SendOneWay(p) }
func (r *rrCaller) SendMethodOneWay(m uint16, p []byte) error { return r.next().SendMethodOneWay(m, p) }
func (r *rrCaller) Close() {
	for _, c := range r.cs {
		c.Close()
	}
}
