// Command zygos-bench regenerates the tables and figures of the ZygOS
// paper's evaluation from this repository's simulators and applications.
//
// Usage:
//
//	zygos-bench [-experiment all|fig2|fig3|fig6|fig7|fig8|fig9|fig10a|fig10b|table1|fig11] [-full] [-seed N]
//
// The default quick mode finishes in minutes; -full (or ZYGOS_FULL=1)
// selects the dense grids used for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zygos/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		full       = flag.Bool("full", os.Getenv("ZYGOS_FULL") == "1", "dense grids and large samples")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	opt := experiments.Options{Full: *full, Seed: *seed}
	run := func(id string, gen experiments.Generator) {
		start := time.Now()
		res := gen(opt)
		res.Render(os.Stdout)
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range experiments.Registry {
			run(e.ID, e.Gen)
		}
		return
	}
	gen, ok := experiments.ByID(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:", *experiment)
		for _, e := range experiments.Registry {
			fmt.Fprintf(os.Stderr, " %s", e.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	run(*experiment, gen)
}
