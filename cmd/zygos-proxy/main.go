// Command zygos-proxy is the cluster front tier: it fronts N backend
// zygos-servers behind one listening address, forwarding every request
// through a tail-aware cluster Caller — power-of-two-choices or
// join-shortest-queue balancing on the backends' piggybacked depth
// reports, hedged requests past an adaptive per-route P99 deadline,
// and (for the kv application) replica-aware keyed routing on a
// consistent-hash ring.
//
// Backends are reached over managed TCP connections (a ConnManager per
// backend: a small fixed socket pool, write coalescing, and jittered
// exponential-backoff redial), so a proxy holds sockets*len(backends)
// connections regardless of how many clients it serves.
//
// Usage:
//
//	zygos-proxy -listen :9100 -backends host1:9000,host2:9000,host3:9000 -policy p2c -hedge
//	zygos-proxy -listen :9100 -backends a:9000,b:9000,c:9000 -kv -replicas 2
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"zygos"
	"zygos/internal/cluster"
)

func main() {
	var (
		listen    = flag.String("listen", ":9100", "front listen address")
		backends  = flag.String("backends", "", "comma-separated backend addresses (required)")
		policy    = flag.String("policy", "p2c", "balancing policy: rr|p2c|jsq")
		hedge     = flag.Bool("hedge", true, "hedge requests past the adaptive per-route P99 deadline")
		hedgeMin  = flag.Duration("hedge-min", 0, "hedge deadline floor (0 = 100µs default)")
		hedgeMax  = flag.Duration("hedge-max", 0, "hedge deadline cap and cold-start deadline (0 = 20ms default)")
		callTO    = flag.Duration("call-timeout", 0, "per-request deadline through the cluster (0 = none); expired requests fail fast instead of waiting out a wedged backend")
		admit     = flag.Int("admit", 0, "front-tier admission: shed new requests once the summed backend depth exceeds this (0 = off)")
		noBreaker = flag.Bool("no-breaker", false, "disable the per-backend circuit breaker")
		kvRoute   = flag.Bool("kv", false, "route kv methods by key on the consistent-hash ring")
		replicas  = flag.Int("replicas", 2, "kv: ring owners per key (reads pick the least loaded, writes fan out)")
		sockets   = flag.Int("sockets", 2, "TCP sockets per backend")
		cores     = flag.Int("cores", 0, "front worker cores (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "SO_REUSEPORT accept shards (0 = one per core)")
		flushWait = flag.Duration("flushwait", 5*time.Second, "graceful shutdown: max wait for in-flight requests")
		statsTick = flag.Duration("stats", 0, "print cluster stats at this interval (0 = only at exit)")
	)
	flag.Parse()

	addrs := splitAddrs(*backends)
	if len(addrs) == 0 {
		log.Fatal("zygos-proxy: -backends is required (comma-separated addresses)")
	}
	pol, err := cluster.ParsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}

	cfg := zygos.ClusterConfig{
		Policy: pol,
		Hedge: zygos.HedgeConfig{
			Enabled:  *hedge,
			MinDelay: *hedgeMin,
			MaxDelay: *hedgeMax,
		},
		CallTimeout:     *callTO,
		Breaker:         zygos.BreakerConfig{Disabled: *noBreaker},
		MaxClusterDepth: *admit,
	}
	if *kvRoute {
		cfg.KeyFunc = zygos.KVKeyFunc
		cfg.Replicas = *replicas
	}
	cl := zygos.NewCluster(cfg)

	// One ConnManager per backend: the managed caller carries the
	// backend's depth reports to the balancer and survives redials with
	// jittered exponential backoff. The managers outlive their callers,
	// so close them explicitly at exit.
	managers := make([]*zygos.ConnManager, 0, len(addrs))
	for _, a := range addrs {
		cm := zygos.NewConnManager(a, *sockets, 5*time.Second)
		mc, err := cm.NewCaller()
		if err != nil {
			log.Fatalf("backend %s: %v", a, err)
		}
		cl.Add(a, mc)
		managers = append(managers, cm)
	}
	defer func() {
		for _, cm := range managers {
			cm.Close()
		}
	}()

	// The front runs with depth frames on, so a second proxy tier (or a
	// depth-aware client) can balance over proxies the same way.
	srv, err := zygos.NewServer(zygos.Config{
		Cores:       *cores,
		Handler:     zygos.ProxyHandler(cl),
		DepthFrames: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Use(srv.LatencyRecording())

	nshards := *shards
	if nshards <= 0 {
		nshards = srv.Cores()
	}
	listeners, err := zygos.ListenShards(*listen, nshards)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("zygos-proxy policy=%s hedge=%v kv=%v replicas=%d backends=%d sockets=%d admit=%d listening on %s",
		pol, *hedge, *kvRoute, cfg.Replicas, len(addrs), *sockets, *admit, listeners[0].Addr())

	if *statsTick > 0 {
		go func() {
			for range time.Tick(*statsTick) {
				logClusterStats(cl.Stats())
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("received %v: draining", s)
		for _, l := range listeners {
			l.Close()
		}
	}()
	var wg sync.WaitGroup
	for _, l := range listeners[1:] {
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			srv.Serve(l)
		}(l)
	}
	if err := srv.Serve(listeners[0]); err != nil {
		log.Printf("serve: %v", err)
	}
	wg.Wait()

	if !srv.Flush(*flushWait) {
		log.Printf("flush: in-flight requests still pending after %v", *flushWait)
	}
	st := srv.Stats()
	log.Printf("front: events=%d detached=%d conns=%d shed=%d expired=%d latency %v",
		st.Events, st.Detached, st.Conns, st.Shed, st.Expired, st.Latency)
	logClusterStats(cl.Stats())
	srv.Close()
	cl.Close()
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func logClusterStats(cs zygos.ClusterStats) {
	log.Printf("cluster: calls=%d shed=%d hedges=%d hedge_wins=%d failovers=%d losers=%d replica_write_failures=%d",
		cs.Calls, cs.Shed, cs.Hedges, cs.HedgeWins, cs.Failovers, cs.Losers, cs.ReplicaWriteFailures)
	log.Printf("cluster health: breaker_trips=%d breaker_probes=%d breaker_readmits=%d deadlines_expired=%d read_fallbacks=%d",
		cs.BreakerTrips, cs.BreakerProbes, cs.BreakerReadmits, cs.DeadlinesExpired, cs.ReadFallbacks)
	for _, b := range cs.Backends {
		log.Printf("  backend %s: state=%s fails=%d inflight=%d depth=%d depth_age=%v",
			b.Name, b.State, b.Fails, b.Inflight, b.Depth, b.DepthAge)
	}
}
