// Command zygos-server runs a ZygOS-style RPC server over real TCP with
// one of three applications:
//
//   - spin: the paper's synthetic microbenchmark — each request carries a
//     little-endian uint64 of nanoseconds to busy-spin before replying;
//   - kv: the memcached-like store (pair with zygos-loadgen -workload etc|usr);
//   - tpcc: the Silo-style database running one TPC-C mix transaction per
//     request.
//
// Usage:
//
//	zygos-server -mode spin -addr :9000 -cores 4
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"time"

	"zygos"
	"zygos/internal/kv"
	"zygos/internal/silo"
	"zygos/internal/tpcc"
)

func main() {
	var (
		mode        = flag.String("mode", "spin", "spin|kv|tpcc")
		addr        = flag.String("addr", ":9000", "listen address")
		cores       = flag.Int("cores", 0, "worker cores (0 = GOMAXPROCS)")
		partitioned = flag.Bool("partitioned", false, "disable work stealing (IX-style baseline)")
		noInt       = flag.Bool("nointerrupts", false, "disable the IPI-analogue kernel proxying")
		warehouses  = flag.Int("warehouses", 2, "tpcc: warehouse count")
	)
	flag.Parse()

	handler, cleanup, err := buildHandler(*mode, *cores, *warehouses)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	srv, err := zygos.NewServer(zygos.Config{
		Cores:        *cores,
		Handler:      handler,
		Partitioned:  *partitioned,
		NoInterrupts: *noInt,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("zygos-server mode=%s cores=%d listening on %s", *mode, srv.Cores(), l.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		st := srv.Stats()
		log.Printf("shutting down: events=%d steals=%d (%.1f%%) proxies=%d conns=%d",
			st.Events, st.Steals, st.StealFraction()*100, st.Proxies, st.Conns)
		l.Close()
	}()
	if err := srv.Serve(l); err != nil {
		log.Printf("serve: %v", err)
	}
}

func buildHandler(mode string, cores, warehouses int) (zygos.Handler, func(), error) {
	switch mode {
	case "spin":
		return spinHandler, func() {}, nil
	case "kv":
		store := kv.NewStore(64, 256<<20)
		return func(req zygos.Request) []byte { return store.Serve(req.Payload) }, func() {}, nil
	case "tpcc":
		db := silo.NewDB(10 * time.Millisecond)
		store, err := tpcc.Load(db, tpcc.Config{Warehouses: warehouses}, 1)
		if err != nil {
			db.Close()
			return nil, nil, err
		}
		log.Printf("tpcc: loaded %d warehouses", warehouses)
		// One RNG per worker: a worker runs one handler at a time, so
		// indexing by req.Worker is race-free.
		rngs := make([]*rand.Rand, 1024)
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(int64(i) + 7))
		}
		h := func(req zygos.Request) []byte {
			rng := rngs[req.Worker]
			tt := tpcc.Pick(rng)
			if err := store.Run(req.Worker, rng, tt); err != nil && err != silo.ErrUserAbort {
				return []byte{1}
			}
			return []byte{0}
		}
		return h, db.Close, nil
	default:
		return nil, nil, fmt.Errorf("unknown mode %q", mode)
	}
}

// spinHandler busy-spins for the requested duration, emulating the
// paper's synthetic service times.
func spinHandler(req zygos.Request) []byte {
	if len(req.Payload) >= 8 {
		ns := binary.LittleEndian.Uint64(req.Payload[:8])
		deadline := time.Now().Add(time.Duration(ns))
		for time.Now().Before(deadline) {
		}
	}
	return []byte{0}
}
