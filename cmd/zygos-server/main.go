// Command zygos-server runs a ZygOS-style RPC server over real TCP with
// one of three applications:
//
//   - spin: the paper's synthetic microbenchmark — each request carries a
//     little-endian uint64 of nanoseconds to busy-spin before replying;
//   - kv: the memcached-like store (pair with zygos-loadgen -workload etc|usr);
//   - tpcc: the Silo-style database running one TPC-C mix transaction per
//     request.
//
// The server installs the latency-recording middleware, and optionally a
// queue-depth admission controller (-shed) that rejects excess load with
// a StatusShed wire status instead of letting queues build.
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, flush
// in-flight requests (including detached replies), print a final stats
// line, then close.
//
// Usage:
//
//	zygos-server -mode spin -addr :9000 -cores 4 [-shed 1024]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"zygos"
	"zygos/internal/kv"
	"zygos/internal/silo"
	"zygos/internal/tpcc"
)

func main() {
	var (
		mode        = flag.String("mode", "spin", "spin|kv|tpcc")
		addr        = flag.String("addr", ":9000", "listen address")
		cores       = flag.Int("cores", 0, "worker cores (0 = GOMAXPROCS)")
		partitioned = flag.Bool("partitioned", false, "disable work stealing (IX-style baseline)")
		noInt       = flag.Bool("nointerrupts", false, "disable the IPI-analogue kernel proxying")
		warehouses  = flag.Int("warehouses", 2, "tpcc: warehouse count")
		shed        = flag.Int("shed", 0, "admission control: max in-flight requests before shedding (0 = off)")
		routeShed   = flag.Bool("routeshed", false, "shed by declared per-route priority instead of uniformly, and enforce route SLOs (kv/tpcc modes; requires -shed)")
		flushWait   = flag.Duration("flushwait", 5*time.Second, "graceful shutdown: max wait for in-flight requests")
		shards      = flag.Int("shards", 0, "SO_REUSEPORT accept shards (0 = one per core; Linux only, degrades to 1 elsewhere)")
		idle        = flag.Duration("idle", 0, "close connections quiet for this long (0 = off)")
		depth       = flag.Bool("depth", true, "piggyback queue-depth health frames to v3 peers (feeds cluster-tier balancing)")
	)
	flag.Parse()

	handler, mux, cleanup, err := buildHandler(*mode, *warehouses)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	srv, err := zygos.NewServer(zygos.Config{
		Cores:        *cores,
		Handler:      handler,
		Partitioned:  *partitioned,
		NoInterrupts: *noInt,
		IdleTimeout:  *idle,
		DepthFrames:  *depth,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Use(srv.LatencyRecording())
	switch {
	case *shed > 0 && *routeShed && mux != nil:
		srv.Use(srv.RouteAwareAdmission(mux, *shed), srv.SLOEnforcement(mux))
	case *shed > 0:
		srv.Use(srv.AdmissionControl(*shed))
	}

	nshards := *shards
	if nshards <= 0 {
		nshards = srv.Cores()
	}
	listeners, err := zygos.ListenShards(*addr, nshards)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("zygos-server mode=%s cores=%d shed=%d shards=%d listening on %s",
		*mode, srv.Cores(), *shed, len(listeners), listeners[0].Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("received %v: draining", s)
		for _, l := range listeners {
			l.Close()
		}
	}()
	// One accept loop per shard; the first runs inline so the command
	// blocks until shutdown exactly as before.
	var wg sync.WaitGroup
	for _, l := range listeners[1:] {
		wg.Add(1)
		go func(l net.Listener) {
			defer wg.Done()
			srv.Serve(l)
		}(l)
	}
	if err := srv.Serve(listeners[0]); err != nil {
		log.Printf("serve: %v", err)
	}
	wg.Wait()

	// Graceful shutdown: flush everything already ingested — detached
	// replies included — then report and close.
	if !srv.Flush(*flushWait) {
		log.Printf("flush: in-flight requests still pending after %v", *flushWait)
	}
	st := srv.Stats()
	log.Printf("final stats: events=%d steals=%d (%.1f%%) proxies=%d (%.1f%%) parks=%d wakes=%d conns=%d detached=%d shed=%d expired=%d",
		st.Events, st.Steals, st.StealFraction()*100, st.Proxies, st.ProxyFraction()*100,
		st.Parks, st.Wakes, st.Conns, st.Detached, st.Shed, st.Expired)
	// Stats().Net.AcceptShards counts listeners *currently* served — zero
	// by the time shutdown reaches this line — so report the count this
	// process actually opened.
	log.Printf("final net: open=%d idle=%d accepted=%d reaped=%d pollers=%d shards=%d egress_resident=%dB",
		st.Net.Open, st.Net.Idle, st.Net.Accepted, st.Net.Reaped, st.Net.Pollers,
		len(listeners), st.Net.EgressBytesResident)
	// The health view a cluster tier balances and breaks circuits on:
	// after a clean flush everything here should read zero.
	d := srv.Depths()
	log.Printf("final health: depth=%d backlog=%d ingress=%d ready=%d depth_frames=%v",
		d.Load(), d.Backlog, d.Ingress, d.Ready, *depth)
	if st.Latency.Count > 0 {
		log.Printf("final latency: %v", st.Latency)
		log.Printf("final queue delay: %v", st.QueueDelay)
	}
	// Per-route (wire method) breakdown, sorted by method ID.
	methods := make([]int, 0, len(st.Routes))
	for m := range st.Routes {
		methods = append(methods, int(m))
	}
	sort.Ints(methods)
	for _, m := range methods {
		rs := st.Routes[uint16(m)]
		log.Printf("final route %d: count=%d shed=%d expired=%d slo_attainment=%.3f %v",
			m, rs.Count, rs.Shed, rs.Expired, rs.Attainment(), rs.Latency)
	}
	srv.Close()
}

// buildHandler returns the mode's Handler and, for the Mux-routed
// applications, the Mux itself so SLO-aware middleware can read its
// route declarations. The kv and tpcc applications mount as
// method-routed Muxes (each operation or transaction type has its own
// wire method, with a method-0 legacy route for v1/v2 clients); spin
// stays a single bare handler.
func buildHandler(mode string, warehouses int) (zygos.Handler, *zygos.Mux, func(), error) {
	switch mode {
	case "spin":
		return spinHandler, nil, func() {}, nil
	case "kv":
		store := kv.NewStore(64, 256<<20)
		mux := store.NewMux()
		// Point lookups and writes are microsecond routes; deletes are
		// the cheap-to-sacrifice traffic under overload.
		mux.Route(kv.MethodGet).SLO(200*time.Microsecond, 2*time.Microsecond)
		mux.Route(kv.MethodSet).SLO(500*time.Microsecond, 4*time.Microsecond)
		mux.Route(kv.MethodDelete).SLO(500*time.Microsecond, 2*time.Microsecond).ShedPriority(1)
		return mux.Handler(), mux, func() {}, nil
	case "tpcc":
		db := silo.NewDB(10 * time.Millisecond)
		store, err := tpcc.Load(db, tpcc.Config{Warehouses: warehouses}, 1)
		if err != nil {
			db.Close()
			return nil, nil, nil, err
		}
		log.Printf("tpcc: loaded %d warehouses", warehouses)
		mux := store.NewMux(7)
		return mux.Handler(), mux, db.Close, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown mode %q", mode)
	}
}

// spinHandler busy-spins for the requested duration, emulating the
// paper's synthetic service times.
func spinHandler(w zygos.ResponseWriter, req *zygos.Request) {
	if len(req.Payload) >= 8 {
		ns := binary.LittleEndian.Uint64(req.Payload[:8])
		deadline := time.Now().Add(time.Duration(ns))
		for time.Now().Before(deadline) {
		}
	}
	w.Reply([]byte{0})
}
