// Command zygos-sim runs one ad-hoc simulation — either a full-system
// dataplane model (ix, linux-partitioned, linux-floating, zygos) or an
// idealized queueing model — and prints the measured latency profile.
//
// Examples:
//
//	zygos-sim -system zygos -dist exponential -mean 10 -load 0.7
//	zygos-sim -system zygos -nointerrupts -dist bimodal-1 -mean 25 -load 0.8
//	zygos-sim -system queueing -arrangement centralized -policy fcfs -load 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zygos/internal/dataplane"
	"zygos/internal/dist"
	"zygos/internal/queueing"
)

func main() {
	var (
		system     = flag.String("system", "zygos", "zygos|ix|linux-partitioned|linux-floating|queueing")
		distName   = flag.String("dist", "exponential", strings.Join(dist.Names(), "|"))
		meanUS     = flag.Int64("mean", 10, "mean service time in µs")
		load       = flag.Float64("load", 0.7, "offered load as a fraction of n/S̄")
		cores      = flag.Int("cores", 16, "worker cores")
		conns      = flag.Int("conns", 2752, "client connections")
		requests   = flag.Int("requests", 200000, "requests to simulate")
		batch      = flag.Int("batch", 64, "IX adaptive batching bound")
		noInt      = flag.Bool("nointerrupts", false, "zygos: disable IPIs")
		seed       = flag.Int64("seed", 1, "simulation seed")
		policy     = flag.String("policy", "fcfs", "queueing: fcfs|ps")
		arrange    = flag.String("arrangement", "centralized", "queueing: centralized|partitioned")
		sloMult    = flag.Float64("slo", 10, "SLO multiple of S̄ for the max-load search (0 disables)")
		searchLoad = flag.Bool("maxload", false, "bisect for max load @ SLO instead of a single run")
	)
	flag.Parse()

	d, err := dist.ByName(*distName, *meanUS*1000)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *system == "queueing" {
		pol := queueing.FCFS
		if *policy == "ps" {
			pol = queueing.PS
		}
		arr := queueing.Centralized
		if *arrange == "partitioned" {
			arr = queueing.Partitioned
		}
		res := queueing.Run(queueing.Config{
			Servers: *cores, Policy: pol, Arrangement: arr,
			Service: d, Load: *load, Requests: *requests,
			Warmup: *requests / 10, Seed: *seed,
		})
		fmt.Printf("%s %s load=%.2f: %s\n",
			queueing.ModelName(*cores, pol, arr), d.Name(), *load,
			res.Latencies.Summarize())
		return
	}

	var sys dataplane.System
	switch *system {
	case "zygos":
		sys = dataplane.Zygos
	case "ix":
		sys = dataplane.IX
	case "linux-partitioned":
		sys = dataplane.LinuxPartitioned
	case "linux-floating":
		sys = dataplane.LinuxFloating
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	cfg := dataplane.Config{
		System:     sys,
		Cores:      *cores,
		Conns:      *conns,
		Service:    d,
		RatePerSec: *load * float64(*cores) / d.Mean() * 1e9,
		Requests:   *requests,
		Warmup:     *requests / 10,
		Seed:       *seed,
		Batch:      *batch,
		Interrupts: !*noInt,
	}

	if *searchLoad {
		ml := dataplane.MaxLoadAtSLO(cfg, int64(*sloMult*d.Mean()), 0.05, 0.99, 8)
		fmt.Printf("%s %s S̄=%dµs: max load @ SLO(%.0fxS̄) = %.3f (%.3f MRPS)\n",
			sys, d.Name(), *meanUS, *sloMult, ml,
			ml*float64(*cores)/d.Mean()*1e3)
		return
	}

	res := dataplane.Run(cfg)
	fmt.Printf("%s %s S̄=%dµs load=%.2f: %s\n", sys, d.Name(), *meanUS, *load, res.Latencies.Summarize())
	fmt.Printf("  offered=%.3f MRPS achieved=%.3f MRPS dropped=%d\n",
		res.OfferedRPS/1e6, res.AchievedRPS/1e6, res.Dropped)
	if sys == dataplane.Zygos {
		fmt.Printf("  events=%d steals=%d (%.1f%%) ipis=%d\n",
			res.Events, res.Steals, res.StealFraction()*100, res.IPIs)
	}
}
