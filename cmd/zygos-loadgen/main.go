// Command zygos-loadgen is a mutilate-style open-loop load generator for
// zygos-server: Poisson arrivals over many connections, latency measured
// from intended arrival times (coordinated-omission safe).
//
// Connections are zygos.Caller values, so one code path drives either
// transport: TCP against a remote zygos-server (the default), or an
// in-process server (-inproc) that runs the spin workload on this
// process's cores — handy for trying the scheduler without a second
// terminal.
//
// Requests are method-routed (v3 frames): the kv presets (etc/usr)
// emit real GET/SET routes, tpcc draws the five transaction methods
// with the standard mix, and -method stamps a fixed method ID on the
// spin workload (0 = the legacy route).
//
// Usage:
//
//	zygos-loadgen -addr localhost:9000 -workload spin -mean 10 -dist exponential -rate 50000 -requests 200000
//	zygos-loadgen -addr localhost:9000 -workload etc -rate 100000
//	zygos-loadgen -inproc -workload spin -method 7 -rate 50000 -requests 200000
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"zygos"
	"zygos/internal/dist"
	"zygos/internal/mutilate"
	"zygos/internal/tpcc"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9000", "server address")
		multi    = flag.String("targets", "", "comma-separated server addresses; connections round-robin across them (overrides -addr) — the client-side balancing baseline to compare against a zygos-proxy front")
		inproc   = flag.Bool("inproc", false, "serve in-process instead of dialing addr (spin workload server)")
		cores    = flag.Int("cores", 0, "inproc: worker cores (0 = GOMAXPROCS)")
		shed     = flag.Int("shed", 0, "inproc: admission-control depth (0 = off)")
		workload = flag.String("workload", "spin", "spin|etc|usr|tpcc")
		method   = flag.Uint("method", 0, "spin: wire method ID to stamp on requests (0 = legacy route)")
		distName = flag.String("dist", "exponential", "spin: service-time distribution ("+strings.Join(dist.Names(), "|")+")")
		meanUS   = flag.Int64("mean", 10, "spin: mean service time µs")
		conns    = flag.Int("conns", 32, "connections")
		rate     = flag.Float64("rate", 10000, "offered requests/second")
		requests = flag.Int("requests", 100000, "total requests")
		warmup   = flag.Int("warmup", 0, "warmup requests excluded from stats (default 10%)")
		keys     = flag.Int("keys", 10000, "etc/usr: keyspace size")
		seed     = flag.Int64("seed", 1, "generator seed")
		budget   = flag.Duration("budget", 0, "stamp this deadline budget on every request (FlagDeadline wire extension; 0 = none)")
		retries  = flag.Int("retries", 0, "retry shed requests up to this many times with jittered backoff honoring the server's retry-after hint (0 = off)")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *requests / 10
	}
	if *inproc && *workload != "spin" {
		log.Fatalf("-inproc starts a spin-mode server; workload %q needs a real zygos-server -mode %s", *workload, *workload)
	}

	gen, check, err := buildWorkload(*workload, uint16(*method), *distName, *meanUS, *keys, *seed)
	if err != nil {
		log.Fatal(err)
	}

	addrs := []string{*addr}
	if *multi != "" {
		addrs = addrs[:0]
		for _, a := range strings.Split(*multi, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			log.Fatal("-targets: no addresses")
		}
	}
	callers, srv, err := dialTargets(*inproc, addrs, *conns, *cores, *shed)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, c := range callers {
			c.Close()
		}
		if srv != nil {
			srv.Close()
		}
	}()

	// Both client types satisfy zygos.Caller, which satisfies
	// mutilate.Target: the run below is transport-agnostic. The budget
	// and retry wrappers compose on top without mutilate knowing.
	var retried atomic.Uint64
	targets := make([]mutilate.Target, len(callers))
	for i, c := range callers {
		var t mutilate.Target = c
		if *budget > 0 {
			bc, ok := c.(zygos.BudgetCaller)
			if !ok {
				log.Fatalf("-budget: transport %T cannot stamp deadline budgets", c)
			}
			t = budgetTarget{bc: bc, d: *budget}
		}
		if *retries > 0 {
			t = &retryTarget{
				inner:   t,
				c:       c,
				rp:      &zygos.RetryPolicy{MaxAttempts: *retries + 1, Rand: rand.New(rand.NewSource(*seed + int64(i)))},
				budget:  *budget,
				retried: &retried,
			}
		}
		targets[i] = t
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	rep := mutilate.Run(mutilate.Config{
		Targets:    targets,
		RatePerSec: *rate,
		Requests:   *requests,
		Warmup:     *warmup,
		Gen:        gen,
		Check:      check,
		Seed:       *seed,
	})
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	allocsPerOp := 0.0
	if rep.Sent > 0 {
		allocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(rep.Sent)
	}
	fmt.Printf("workload=%s offered=%.0f/s achieved=%.0f/s sent=%d completed=%d errors=%d retried=%d\n",
		*workload, rep.OfferedRPS, rep.AchievedRPS, rep.Sent, rep.Completed, rep.Errors, retried.Load())
	fmt.Printf("latency: %s\n", rep.Latencies.Summarize())
	// GC activity during the run: on an in-process run this covers both
	// sides of the hot path, so a hot-path allocation regression shows up
	// here long before it shows up as tail latency.
	fmt.Printf("gc: numgc=%d pause=%v allocs/op=%.1f\n",
		msAfter.NumGC-msBefore.NumGC,
		time.Duration(msAfter.PauseTotalNs-msBefore.PauseTotalNs).Round(time.Microsecond),
		allocsPerOp)

	if srv != nil {
		st := srv.Stats()
		fmt.Printf("server: events=%d steals=%d (%.1f%%) proxies=%d shed=%d\n",
			st.Events, st.Steals, st.StealFraction()*100, st.Proxies, st.Shed)
		fmt.Printf("server latency: %v\n", st.Latency)
		fmt.Printf("server queue delay: %v\n", st.QueueDelay)
	}
}

// budgetTarget stamps a fixed wire deadline budget on every open-loop
// send, so the server's EDF scheduler and expiry shedding see real
// budgets from this generator.
type budgetTarget struct {
	bc zygos.BudgetCaller
	d  time.Duration
}

func (t budgetTarget) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return t.bc.SendMethodBudgetAsync(method, payload, t.d, cb)
}

// retryTarget retries shed replies through a zygos.RetryPolicy: the
// retry runs closed-loop on its own goroutine (never on the transport
// read loop), with jittered backoff that honors the server's
// retry-after hint. Latency is charged from the original intended send
// — the coordinated-omission-safe accounting — because cb fires only
// when the retries resolve.
type retryTarget struct {
	inner   mutilate.Target
	c       zygos.Caller
	rp      *zygos.RetryPolicy
	budget  time.Duration
	retried *atomic.Uint64
}

func (t *retryTarget) SendMethodAsync(method uint16, payload []byte, cb func(resp []byte, err error)) error {
	return t.inner.SendMethodAsync(method, payload, func(resp []byte, err error) {
		if err == nil || !errors.Is(err, zygos.ErrShed) {
			cb(resp, err)
			return
		}
		t.retried.Add(1)
		p := append([]byte(nil), payload...)
		go func() {
			resp, err := t.rp.Do(func() ([]byte, error) {
				if t.budget > 0 {
					return t.c.CallMethodTimeout(method, p, t.budget)
				}
				return t.c.CallMethod(method, p)
			})
			cb(resp, err)
		}()
	})
}

// dialTargets opens conns connections as zygos.Caller values: TCP
// clients round-robined across addrs, or in-process clients against a
// freshly started spin server. With several addrs the conn assignment
// is the static client-side balancing baseline: each connection sticks
// to its server, so load spreads by count, not by live queue depth.
func dialTargets(inproc bool, addrs []string, conns, cores, shed int) ([]zygos.Caller, *zygos.Server, error) {
	callers := make([]zygos.Caller, 0, conns)
	if !inproc {
		for i := 0; i < conns; i++ {
			a := addrs[i%len(addrs)]
			c, err := zygos.DialClient(a, 5*time.Second)
			if err != nil {
				return nil, nil, fmt.Errorf("dial %d (%s): %w", i, a, err)
			}
			callers = append(callers, c)
		}
		return callers, nil, nil
	}
	srv, err := zygos.NewServer(zygos.Config{
		Cores: cores,
		Handler: func(w zygos.ResponseWriter, req *zygos.Request) {
			if len(req.Payload) >= 8 {
				ns := binary.LittleEndian.Uint64(req.Payload[:8])
				deadline := time.Now().Add(time.Duration(ns))
				for time.Now().Before(deadline) {
				}
			}
			w.Reply([]byte{0})
		},
	})
	if err != nil {
		return nil, nil, err
	}
	srv.Use(srv.LatencyRecording())
	if shed > 0 {
		srv.Use(srv.AdmissionControl(shed))
	}
	for i := 0; i < conns; i++ {
		callers = append(callers, srv.NewClient())
	}
	return callers, srv, nil
}

// buildWorkload returns the method-routed request generator. The kv
// presets emit real GET/SET routes and tpcc the five transaction
// methods; the spin workload stamps the -method flag on every request.
func buildWorkload(name string, method uint16, distName string, meanUS int64, keys int, seed int64) (func(*rand.Rand) (uint16, []byte), func([]byte) bool, error) {
	switch name {
	case "spin":
		d, err := dist.ByName(distName, meanUS*1000)
		if err != nil {
			return nil, nil, err
		}
		gen := func(rng *rand.Rand) (uint16, []byte) {
			var p [8]byte
			binary.LittleEndian.PutUint64(p[:], uint64(d.Sample(rng)))
			return method, p[:]
		}
		return gen, nil, nil
	case "etc":
		return mutilate.ETC(keys).Gen(), nil, nil
	case "usr":
		return mutilate.USR(keys).Gen(), nil, nil
	case "tpcc":
		gen := func(rng *rand.Rand) (uint16, []byte) { return tpcc.PickMethod(rng), nil }
		check := func(resp []byte) bool { return len(resp) == 1 && resp[0] == 0 }
		return gen, check, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", name)
	}
}
