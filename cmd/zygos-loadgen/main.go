// Command zygos-loadgen is a mutilate-style open-loop load generator for
// zygos-server: Poisson arrivals over many TCP connections, latency
// measured from intended arrival times (coordinated-omission safe).
//
// Usage:
//
//	zygos-loadgen -addr localhost:9000 -workload spin -mean 10 -dist exponential -rate 50000 -requests 200000
//	zygos-loadgen -addr localhost:9000 -workload etc -rate 100000
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"zygos"
	"zygos/internal/dist"
	"zygos/internal/mutilate"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9000", "server address")
		workload = flag.String("workload", "spin", "spin|etc|usr|tpcc")
		distName = flag.String("dist", "exponential", "spin: service-time distribution ("+strings.Join(dist.Names(), "|")+")")
		meanUS   = flag.Int64("mean", 10, "spin: mean service time µs")
		conns    = flag.Int("conns", 32, "TCP connections")
		rate     = flag.Float64("rate", 10000, "offered requests/second")
		requests = flag.Int("requests", 100000, "total requests")
		warmup   = flag.Int("warmup", 0, "warmup requests excluded from stats (default 10%)")
		keys     = flag.Int("keys", 10000, "etc/usr: keyspace size")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *warmup == 0 {
		*warmup = *requests / 10
	}

	gen, check, err := buildWorkload(*workload, *distName, *meanUS, *keys, *seed)
	if err != nil {
		log.Fatal(err)
	}

	targets := make([]mutilate.Target, 0, *conns)
	for i := 0; i < *conns; i++ {
		c, err := zygos.DialClient(*addr, 5*time.Second)
		if err != nil {
			log.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
		targets = append(targets, c)
	}

	rep := mutilate.Run(mutilate.Config{
		Targets:    targets,
		RatePerSec: *rate,
		Requests:   *requests,
		Warmup:     *warmup,
		Gen:        gen,
		Check:      check,
		Seed:       *seed,
	})
	fmt.Printf("workload=%s offered=%.0f/s achieved=%.0f/s sent=%d completed=%d errors=%d\n",
		*workload, rep.OfferedRPS, rep.AchievedRPS, rep.Sent, rep.Completed, rep.Errors)
	fmt.Printf("latency: %s\n", rep.Latencies.Summarize())
}

func buildWorkload(name, distName string, meanUS int64, keys int, seed int64) (func(*rand.Rand) []byte, func([]byte) bool, error) {
	switch name {
	case "spin":
		d, err := dist.ByName(distName, meanUS*1000)
		if err != nil {
			return nil, nil, err
		}
		gen := func(rng *rand.Rand) []byte {
			var p [8]byte
			binary.LittleEndian.PutUint64(p[:], uint64(d.Sample(rng)))
			return p[:]
		}
		return gen, nil, nil
	case "etc":
		return mutilate.ETC(keys).Gen(), nil, nil
	case "usr":
		return mutilate.USR(keys).Gen(), nil, nil
	case "tpcc":
		gen := func(rng *rand.Rand) []byte { return []byte{0} }
		check := func(resp []byte) bool { return len(resp) == 1 && resp[0] == 0 }
		return gen, check, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", name)
	}
}
