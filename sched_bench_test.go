// Scheduler-scaling benchmarks: the same pipelined echo load run against
// 1, 2, 4 and 8 scheduler cores, with one connection homed on every
// worker and an independent driver goroutine per connection. Unlike the
// BenchmarkHotPath* suite (which isolates the data path), these stress
// the control path end to end — ingress ring publishes, ready-ring
// pushes and steals, remote-syscall drains, eventcount parks and wakes —
// and how it scales as cores are added. BENCH_sched.json tracks them
// across PRs (`make bench` regenerates the "current" section); make
// bench-smoke additionally records GOMAXPROCS=1 and GOMAXPROCS=4 columns
// so a scaling regression shows up even when a single-core run looks
// healthy. Note that with GOMAXPROCS below the core count the workers
// time-share OS threads, so ns/op then measures scheduling-fabric
// overhead rather than hardware parallelism.
package zygos

import (
	"sync"
	"testing"
)

// benchSchedScale drives a pipelined window of echo requests at a
// server with the given core count, one connection per worker.
func benchSchedScale(b *testing.B, cores int) {
	b.Helper()
	srv := newBenchEchoServer(b, cores)

	// One client homed on each worker, so every ingress ring, ready ring
	// and eventcount participates.
	clients := make([]*Client, cores)
	for w := 0; w < cores; w++ {
		for {
			c := srv.NewClient()
			if c.Home() == w {
				clients[w] = c
				break
			}
			c.Close()
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	const window = 32
	payload := []byte("0123456789abcdef")
	per := b.N / cores
	extra := b.N % cores

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, c := range clients {
		n := per
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(c *Client, n int) {
			defer wg.Done()
			var inflight sync.WaitGroup
			cb := func([]byte, error) { inflight.Done() }
			for k := 0; k < n; k++ {
				inflight.Add(1)
				if err := c.SendAsync(payload, cb); err != nil {
					b.Error(err)
					inflight.Done()
					return
				}
				if k%window == window-1 {
					inflight.Wait()
				}
			}
			inflight.Wait()
		}(c, n)
	}
	wg.Wait()
}

func BenchmarkSchedScale1(b *testing.B) { benchSchedScale(b, 1) }
func BenchmarkSchedScale2(b *testing.B) { benchSchedScale(b, 2) }
func BenchmarkSchedScale4(b *testing.B) { benchSchedScale(b, 4) }
func BenchmarkSchedScale8(b *testing.B) { benchSchedScale(b, 8) }

// BenchmarkSchedWakeLatency measures the single-request round trip with
// a fully idle worker pool: every call parks all workers and the reply
// requires a demand wake, so this is the eventcount's wake path latency
// (the replacement for the old park-interval poll).
func BenchmarkSchedWakeLatency(b *testing.B) {
	srv := newBenchEchoServer(b, 2)
	c := srv.NewClient()
	defer c.Close()
	payload := []byte("wake")
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.CallInto(payload, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		buf = r
	}
	if st := srv.Stats(); st.Parks == 0 {
		b.Log("warning: no parks recorded; wake path not exercised")
	}
}
